package intset_test

import (
	"sort"
	"sync"
	"testing"

	"tinystm/internal/core"
	"tinystm/internal/intset"
	"tinystm/internal/mem"
	"tinystm/internal/rng"
	"tinystm/internal/tl2"
	"tinystm/internal/txn"
)

// setKind names a structure under test.
type setKind int

const (
	kindList setKind = iota
	kindTree
	kindSkip
	kindHash
)

var kindNames = map[setKind]string{
	kindList: "list", kindTree: "rbtree", kindSkip: "skiplist", kindHash: "hashset",
}

// buildSet constructs a set of the given kind inside tx.
func buildSet[T txn.Tx](tx T, k setKind, r *rng.Rand) intset.Set[T] {
	switch k {
	case kindList:
		return intset.List[T]{Head: intset.NewList(tx)}
	case kindTree:
		return intset.Tree[T]{Root: intset.NewTree(tx)}
	case kindSkip:
		return intset.SkipList[T]{Head: intset.NewSkipList(tx), Rng: r}
	case kindHash:
		return intset.HashSet[T]{Handle: intset.NewHashSet(tx, 64)}
	default:
		panic("unknown kind")
	}
}

// runSequentialVsMap drives random operations against the structure and a
// reference map and compares every result.
func runSequentialVsMap[T txn.Tx](t *testing.T, sys txn.System[T], k setKind, seed uint64) {
	t.Helper()
	tx := sys.NewTx()
	r := rng.New(seed)
	var set intset.Set[T]
	sys.Atomic(tx, func(tx T) { set = buildSet(tx, k, r) })

	ref := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		v := uint64(r.Intn(200)) + 1
		switch r.Intn(3) {
		case 0:
			var got bool
			sys.Atomic(tx, func(tx T) { got = set.Insert(tx, v) })
			want := !ref[v]
			if got != want {
				t.Fatalf("%s op %d: Insert(%d) = %v, want %v", kindNames[k], i, v, got, want)
			}
			ref[v] = true
		case 1:
			var got bool
			sys.Atomic(tx, func(tx T) { got = set.Remove(tx, v) })
			want := ref[v]
			if got != want {
				t.Fatalf("%s op %d: Remove(%d) = %v, want %v", kindNames[k], i, v, got, want)
			}
			delete(ref, v)
		default:
			var got bool
			sys.Atomic(tx, func(tx T) { got = set.Contains(tx, v) })
			if got != ref[v] {
				t.Fatalf("%s op %d: Contains(%d) = %v, want %v", kindNames[k], i, v, got, ref[v])
			}
		}
		if i%500 == 499 {
			var size int
			sys.Atomic(tx, func(tx T) { size = set.Size(tx) })
			if size != len(ref) {
				t.Fatalf("%s op %d: Size = %d, want %d", kindNames[k], i, size, len(ref))
			}
		}
	}
}

func newCoreSys(t testing.TB, d core.Design) *core.TM {
	t.Helper()
	sp := mem.NewSpace(1 << 22)
	return core.MustNew(core.Config{Space: sp, Locks: 1 << 12, Design: d})
}

func newTL2Sys(t testing.TB) *tl2.TM {
	t.Helper()
	sp := mem.NewSpace(1 << 22)
	return tl2.MustNew(tl2.Config{Space: sp, Locks: 1 << 12})
}

func TestSequentialSemanticsAllKindsAllSystems(t *testing.T) {
	kinds := []setKind{kindList, kindTree, kindSkip, kindHash}
	for _, k := range kinds {
		k := k
		t.Run(kindNames[k]+"/core-wb", func(t *testing.T) {
			runSequentialVsMap[*core.Tx](t, newCoreSys(t, core.WriteBack), k, 11)
		})
		t.Run(kindNames[k]+"/core-wt", func(t *testing.T) {
			runSequentialVsMap[*core.Tx](t, newCoreSys(t, core.WriteThrough), k, 22)
		})
		t.Run(kindNames[k]+"/tl2", func(t *testing.T) {
			runSequentialVsMap[*tl2.Tx](t, newTL2Sys(t), k, 33)
		})
	}
}

func TestTreeInvariantsAfterRandomOps(t *testing.T) {
	tm := newCoreSys(t, core.WriteBack)
	tx := tm.NewTx()
	var root uint64
	tm.Atomic(tx, func(tx *core.Tx) { root = intset.NewTree(tx) })
	r := rng.New(5)
	ref := map[uint64]bool{}
	for i := 0; i < 1500; i++ {
		v := uint64(r.Intn(100)) + 1
		if r.Intn(2) == 0 {
			tm.Atomic(tx, func(tx *core.Tx) { intset.TreeInsert(tx, root, v, v*2) })
			ref[v] = true
		} else {
			tm.Atomic(tx, func(tx *core.Tx) { intset.TreeRemove(tx, root, v) })
			delete(ref, v)
		}
		if i%50 == 0 {
			tm.Atomic(tx, func(tx *core.Tx) {
				if err := intset.TreeValidate(tx, root); err != nil {
					//stm:allow-effect test-only: a failed assertion ends the test, and the throwaway TM dies with it
					t.Fatalf("op %d: %v", i, err)
				}
			})
		}
	}
	// Final full comparison including stored values.
	tm.Atomic(tx, func(tx *core.Tx) {
		if err := intset.TreeValidate(tx, root); err != nil {
			//stm:allow-effect test-only: a failed assertion ends the test, and the throwaway TM dies with it
			t.Fatal(err)
		}
		keys := intset.TreeSnapshot(tx, root)
		if len(keys) != len(ref) {
			//stm:allow-effect test-only: a failed assertion ends the test, and the throwaway TM dies with it
			t.Fatalf("size %d, want %d", len(keys), len(ref))
		}
		for _, k := range keys {
			if !ref[k] {
				//stm:allow-effect test-only: a failed assertion ends the test, and the throwaway TM dies with it
				t.Fatalf("unexpected key %d", k)
			}
			v, ok := intset.TreeLookup(tx, root, k)
			if !ok || v != k*2 {
				//stm:allow-effect test-only: a failed assertion ends the test, and the throwaway TM dies with it
				t.Fatalf("lookup %d = (%d,%v), want (%d,true)", k, v, ok, k*2)
			}
		}
	})
}

func TestTreeSetOverwrites(t *testing.T) {
	tm := newCoreSys(t, core.WriteBack)
	tx := tm.NewTx()
	var root uint64
	tm.Atomic(tx, func(tx *core.Tx) {
		root = intset.NewTree(tx)
		if !intset.TreeSet(tx, root, 5, 50) {
			t.Error("first TreeSet should insert")
		}
		if intset.TreeSet(tx, root, 5, 51) {
			t.Error("second TreeSet should overwrite, not insert")
		}
		if v, _ := intset.TreeLookup(tx, root, 5); v != 51 {
			t.Errorf("value = %d, want 51", v)
		}
	})
}

func TestListSnapshotSorted(t *testing.T) {
	tm := newCoreSys(t, core.WriteBack)
	tx := tm.NewTx()
	var head uint64
	tm.Atomic(tx, func(tx *core.Tx) { head = intset.NewList(tx) })
	vals := []uint64{42, 7, 99, 1, 63, 12}
	for _, v := range vals {
		tm.Atomic(tx, func(tx *core.Tx) { intset.ListInsert(tx, head, v) })
	}
	tm.Atomic(tx, func(tx *core.Tx) {
		snap := intset.ListSnapshot(tx, head)
		if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i] < snap[j] }) {
			t.Errorf("snapshot not sorted: %v", snap)
		}
		if len(snap) != len(vals) {
			t.Errorf("len = %d, want %d", len(snap), len(vals))
		}
	})
}

func TestListOverwriteSemantics(t *testing.T) {
	tm := newCoreSys(t, core.WriteBack)
	tx := tm.NewTx()
	var head uint64
	tm.Atomic(tx, func(tx *core.Tx) { head = intset.NewList(tx) })
	for _, v := range []uint64{10, 20, 30, 40} {
		tm.Atomic(tx, func(tx *core.Tx) { intset.ListInsert(tx, head, v) })
	}
	cases := []struct {
		upTo uint64
		want int
	}{
		{5, 0}, {10, 0}, {11, 1}, {25, 2}, {45, 4},
	}
	for _, c := range cases {
		var got, wsize int
		tm.Atomic(tx, func(tx *core.Tx) {
			got = intset.ListOverwrite(tx, head, c.upTo)
			wsize = tx.WriteSetSize()
		})
		if got != c.want {
			t.Errorf("Overwrite(%d) = %d, want %d", c.upTo, got, c.want)
		}
		if got > 0 && wsize == 0 {
			t.Errorf("Overwrite(%d) produced empty write set", c.upTo)
		}
	}
}

func TestSentinelValuesPanic(t *testing.T) {
	tm := newCoreSys(t, core.WriteBack)
	tx := tm.NewTx()
	var head uint64
	tm.Atomic(tx, func(tx *core.Tx) { head = intset.NewList(tx) })
	for _, v := range []uint64{intset.MinValue, intset.MaxValue} {
		func() {
			defer func() {
				recover() // the panic is expected; the tx rolls back
			}()
			tm.Atomic(tx, func(tx *core.Tx) { intset.ListInsert(tx, head, v) })
			t.Errorf("sentinel %d accepted", v)
		}()
	}
}

// runConcurrentStress hammers one set from several workers; each worker
// alternates insert/remove of its own value band so the final size is
// predictable, while shared reads cross bands.
func runConcurrentStress[T txn.Tx](t *testing.T, sys txn.System[T], k setKind) {
	t.Helper()
	setupR := rng.New(1)
	setup := sys.NewTx()
	var set intset.Set[T]
	sys.Atomic(setup, func(tx T) { set = buildSet(tx, k, setupR) })

	const workers = 4
	const band = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewThread(77, id)
			// Each skip-list worker needs its own level generator: the
			// shared one in `set` is not goroutine-safe.
			var mine intset.Set[T] = set
			if sl, ok := any(set).(intset.SkipList[T]); ok {
				mine = intset.SkipList[T]{Head: sl.Head, Rng: r}
			}
			tx := sys.NewTx()
			lo := uint64(id*band) + 1
			for i := 0; i < 300; i++ {
				v := lo + uint64(r.Intn(band))
				switch r.Intn(3) {
				case 0:
					sys.Atomic(tx, func(tx T) { mine.Insert(tx, v) })
				case 1:
					sys.Atomic(tx, func(tx T) { mine.Remove(tx, v) })
				default:
					shared := uint64(r.Intn(workers*band)) + 1
					sys.AtomicRO(tx, func(tx T) { mine.Contains(tx, shared) })
				}
			}
			// Drain the band so the final size is exactly computable.
			for v := lo; v < lo+band; v++ {
				sys.Atomic(tx, func(tx T) { mine.Remove(tx, v) })
			}
		}(w)
	}
	wg.Wait()
	sys.Atomic(setup, func(tx T) {
		if size := set.Size(tx); size != 0 {
			t.Errorf("%s: final size = %d, want 0", kindNames[k], size)
		}
	})
}

func TestConcurrentStressAllKinds(t *testing.T) {
	for _, k := range []setKind{kindList, kindTree, kindSkip, kindHash} {
		k := k
		t.Run(kindNames[k]+"/core-wb", func(t *testing.T) {
			runConcurrentStress[*core.Tx](t, newCoreSys(t, core.WriteBack), k)
		})
		t.Run(kindNames[k]+"/core-wt", func(t *testing.T) {
			runConcurrentStress[*core.Tx](t, newCoreSys(t, core.WriteThrough), k)
		})
		t.Run(kindNames[k]+"/tl2", func(t *testing.T) {
			runConcurrentStress[*tl2.Tx](t, newTL2Sys(t), k)
		})
	}
}

func TestConcurrentTreeKeepsInvariants(t *testing.T) {
	tm := newCoreSys(t, core.WriteBack)
	setup := tm.NewTx()
	var root uint64
	tm.Atomic(setup, func(tx *core.Tx) { root = intset.NewTree(tx) })
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewThread(3, id)
			tx := tm.NewTx()
			for i := 0; i < 400; i++ {
				v := uint64(r.Intn(256)) + 1
				if r.Intn(2) == 0 {
					tm.Atomic(tx, func(tx *core.Tx) { intset.TreeInsert(tx, root, v, v) })
				} else {
					tm.Atomic(tx, func(tx *core.Tx) { intset.TreeRemove(tx, root, v) })
				}
			}
		}(w)
	}
	wg.Wait()
	tm.Atomic(setup, func(tx *core.Tx) {
		if err := intset.TreeValidate(tx, root); err != nil {
			//stm:allow-effect test-only: a failed assertion ends the test, and the throwaway TM dies with it
			t.Fatal(err)
		}
	})
}

func TestHashSetRequiresBucket(t *testing.T) {
	tm := newCoreSys(t, core.WriteBack)
	tx := tm.NewTx()
	defer func() {
		if recover() == nil {
			t.Error("NewHashSet(0) did not panic")
		}
	}()
	tm.Atomic(tx, func(tx *core.Tx) { intset.NewHashSet(tx, 0) })
}
