package intset_test

import (
	"sort"
	"testing"
	"testing/quick"

	"tinystm/internal/core"
	"tinystm/internal/intset"
	"tinystm/internal/rng"
)

func buildTreeWith(t *testing.T, keys []uint64) (*core.TM, *core.Tx, uint64) {
	t.Helper()
	tm := newCoreSys(t, core.WriteBack)
	tx := tm.NewTx()
	var root uint64
	tm.Atomic(tx, func(tx *core.Tx) {
		root = intset.NewTree(tx)
		for _, k := range keys {
			intset.TreeInsert(tx, root, k, k*10)
		}
	})
	return tm, tx, root
}

func TestTreeMinMax(t *testing.T) {
	tm, tx, root := buildTreeWith(t, []uint64{42, 7, 99, 13, 56})
	tm.Atomic(tx, func(tx *core.Tx) {
		if k, ok := intset.TreeMin(tx, root); !ok || k != 7 {
			t.Errorf("min = %d,%v want 7", k, ok)
		}
		if k, ok := intset.TreeMax(tx, root); !ok || k != 99 {
			t.Errorf("max = %d,%v want 99", k, ok)
		}
	})
}

func TestTreeMinMaxEmpty(t *testing.T) {
	tm, tx, root := buildTreeWith(t, nil)
	tm.Atomic(tx, func(tx *core.Tx) {
		if _, ok := intset.TreeMin(tx, root); ok {
			t.Error("min on empty tree reported ok")
		}
		if _, ok := intset.TreeMax(tx, root); ok {
			t.Error("max on empty tree reported ok")
		}
	})
}

func TestTreeCeilingFloor(t *testing.T) {
	tm, tx, root := buildTreeWith(t, []uint64{10, 20, 30})
	cases := []struct {
		q       uint64
		ceil    uint64
		ceilOK  bool
		floor   uint64
		floorOK bool
	}{
		{5, 10, true, 0, false},
		{10, 10, true, 10, true},
		{15, 20, true, 10, true},
		{30, 30, true, 30, true},
		{35, 0, false, 30, true},
	}
	tm.Atomic(tx, func(tx *core.Tx) {
		for _, c := range cases {
			if k, ok := intset.TreeCeiling(tx, root, c.q); ok != c.ceilOK || (ok && k != c.ceil) {
				t.Errorf("Ceiling(%d) = %d,%v want %d,%v", c.q, k, ok, c.ceil, c.ceilOK)
			}
			if k, ok := intset.TreeFloor(tx, root, c.q); ok != c.floorOK || (ok && k != c.floor) {
				t.Errorf("Floor(%d) = %d,%v want %d,%v", c.q, k, ok, c.floor, c.floorOK)
			}
		}
	})
}

func TestTreeRangeScan(t *testing.T) {
	tm, tx, root := buildTreeWith(t, []uint64{10, 20, 30, 40, 50})
	tm.Atomic(tx, func(tx *core.Tx) {
		var keys, vals []uint64
		n := intset.TreeRange(tx, root, 15, 45, func(k, v uint64) bool {
			keys = append(keys, k)
			vals = append(vals, v)
			return true
		})
		if n != 3 || len(keys) != 3 {
			//stm:allow-effect test-only: a failed assertion ends the test, and the throwaway TM dies with it
			t.Fatalf("visited %d, want 3", n)
		}
		for i, want := range []uint64{20, 30, 40} {
			if keys[i] != want || vals[i] != want*10 {
				t.Errorf("pair %d = (%d,%d), want (%d,%d)", i, keys[i], vals[i], want, want*10)
			}
		}
	})
}

func TestTreeRangeEarlyStop(t *testing.T) {
	tm, tx, root := buildTreeWith(t, []uint64{1, 2, 3, 4, 5})
	tm.Atomic(tx, func(tx *core.Tx) {
		var seen []uint64
		n := intset.TreeRange(tx, root, 1, 5, func(k, v uint64) bool {
			seen = append(seen, k)
			return len(seen) < 2
		})
		if n != 2 || len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
			t.Errorf("early stop wrong: n=%d seen=%v", n, seen)
		}
	})
}

func TestQuickTreeRangeMatchesSort(t *testing.T) {
	f := func(raw []uint16, loRaw, hiRaw uint16) bool {
		lo, hi := uint64(loRaw%300), uint64(hiRaw%300)
		if lo > hi {
			lo, hi = hi, lo
		}
		keys := map[uint64]bool{}
		for _, r := range raw {
			keys[uint64(r%300)+1] = true
		}
		tm := newCoreSys(t, core.WriteBack)
		tx := tm.NewTx()
		var root uint64
		tm.Atomic(tx, func(tx *core.Tx) {
			root = intset.NewTree(tx)
			for k := range keys {
				intset.TreeInsert(tx, root, k, k)
			}
		})
		var want []uint64
		for k := range keys {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		ok := true
		tm.Atomic(tx, func(tx *core.Tx) {
			var got []uint64
			intset.TreeRange(tx, root, lo, hi, func(k, v uint64) bool {
				got = append(got, k)
				return true
			})
			if len(got) != len(want) {
				ok = false
				return
			}
			for i := range got {
				if got[i] != want[i] {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeRangeUnderConcurrentMutation(t *testing.T) {
	// A range scan inside one transaction must observe a consistent
	// snapshot even while other descriptors mutate the tree.
	tm := newCoreSys(t, core.WriteBack)
	setup := tm.NewTx()
	var root uint64
	tm.Atomic(setup, func(tx *core.Tx) {
		root = intset.NewTree(tx)
		for k := uint64(2); k <= 200; k += 2 { // even keys only
			intset.TreeInsert(tx, root, k, k)
		}
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		r := rng.New(5)
		tx := tm.NewTx()
		for i := 0; i < 300; i++ {
			k := uint64(r.Intn(100))*2 + 1 // odd keys
			tm.Atomic(tx, func(tx *core.Tx) {
				if !intset.TreeInsert(tx, root, k, k) {
					intset.TreeRemove(tx, root, k)
				}
			})
		}
	}()
	scan := tm.NewTx()
	for i := 0; i < 50; i++ {
		tm.AtomicRO(scan, func(tx *core.Tx) {
			// Even keys are immutable: a consistent snapshot always
			// contains exactly 100 of them regardless of odd-key churn.
			evens := 0
			intset.TreeRange(tx, root, 1, 200, func(k, v uint64) bool {
				if k%2 == 0 {
					evens++
				}
				return true
			})
			if evens != 100 {
				t.Errorf("scan %d: saw %d even keys, want 100", i, evens)
			}
		})
	}
	<-done
}
