package intset

import (
	"fmt"

	"tinystm/internal/txn"
)

// TreeValidate checks the red-black invariants transactionally and returns
// the first violation found (nil if the tree is valid):
//
//  1. the root is black;
//  2. no red node has a red child;
//  3. every root-to-leaf path has the same black height;
//  4. in-order keys are strictly increasing;
//  5. parent pointers are consistent with child pointers.
func TreeValidate[T txn.Tx](tx T, t uint64) error {
	root := tx.Load(t)
	if root == 0 {
		return nil
	}
	if tx.Load(root+nodeColor) != colorBlack {
		return fmt.Errorf("intset: root %d is red", root)
	}
	if p := tx.Load(root + nodeParent); p != 0 {
		return fmt.Errorf("intset: root %d has parent %d", root, p)
	}
	_, err := validateSubtree(tx, root)
	if err != nil {
		return err
	}
	return validateOrder(tx, root)
}

// validateSubtree returns the black height of n's subtree.
func validateSubtree[T txn.Tx](tx T, n uint64) (int, error) {
	if n == 0 {
		return 1, nil
	}
	c := tx.Load(n + nodeColor)
	if c != colorBlack && c != colorRed {
		return 0, fmt.Errorf("intset: node %d has invalid color %d", n, c)
	}
	l, r := tx.Load(n+nodeLeft), tx.Load(n+nodeRight)
	if c == colorRed {
		if l != 0 && tx.Load(l+nodeColor) == colorRed {
			return 0, fmt.Errorf("intset: red node %d has red left child", n)
		}
		if r != 0 && tx.Load(r+nodeColor) == colorRed {
			return 0, fmt.Errorf("intset: red node %d has red right child", n)
		}
	}
	if l != 0 && tx.Load(l+nodeParent) != n {
		return 0, fmt.Errorf("intset: node %d left child parent pointer broken", n)
	}
	if r != 0 && tx.Load(r+nodeParent) != n {
		return 0, fmt.Errorf("intset: node %d right child parent pointer broken", n)
	}
	lh, err := validateSubtree(tx, l)
	if err != nil {
		return 0, err
	}
	rh, err := validateSubtree(tx, r)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("intset: node %d black height mismatch %d vs %d", n, lh, rh)
	}
	if c == colorBlack {
		lh++
	}
	return lh, nil
}

func validateOrder[T txn.Tx](tx T, root uint64) error {
	prev := uint64(0)
	first := true
	var walk func(n uint64) error
	walk = func(n uint64) error {
		if n == 0 {
			return nil
		}
		if err := walk(tx.Load(n + nodeLeft)); err != nil {
			return err
		}
		k := tx.Load(n + nodeKey)
		if !first && k <= prev {
			return fmt.Errorf("intset: keys out of order: %d after %d", k, prev)
		}
		prev, first = k, false
		return walk(tx.Load(n + nodeRight))
	}
	return walk(root)
}
