package intset

import "tinystm/internal/txn"

// Transactional hash set (extension): fixed bucket array of sorted
// singly-linked chains without sentinels. Buckets are word slots holding
// the first node address (0 = empty), so an insert at a chain head writes
// the bucket word itself — a useful contrast to the sentinel-based list
// for lock-array mapping experiments.
//
// Layout: the handle addresses a block of 1+nbuckets words:
//
//	word 0:  bucket count
//	word 1+i: head of chain i
//
// Chain nodes reuse the 2-word list layout (value, next).

// NewHashSet allocates a hash set with nbuckets chains (power of two
// recommended but not required) and returns its handle.
func NewHashSet[T txn.Tx](tx T, nbuckets int) uint64 {
	if nbuckets < 1 {
		panic("intset: hash set needs at least one bucket")
	}
	h := tx.Alloc(1 + nbuckets)
	tx.Store(h, uint64(nbuckets))
	for i := 1; i <= nbuckets; i++ {
		tx.Store(h+uint64(i), 0)
	}
	return h
}

func hashBucket[T txn.Tx](tx T, h, v uint64) uint64 {
	n := tx.Load(h)
	return h + 1 + (v*0x9e3779b97f4a7c15)%n
}

// HashContains reports whether v is present.
func HashContains[T txn.Tx](tx T, h, v uint64) bool {
	checkValue(v)
	curr := tx.Load(hashBucket(tx, h, v))
	for curr != 0 {
		cv := tx.Load(curr + listVal)
		if cv == v {
			return true
		}
		if cv > v {
			return false
		}
		curr = tx.Load(curr + listNext)
	}
	return false
}

// HashInsert adds v, reporting whether the set changed.
func HashInsert[T txn.Tx](tx T, h, v uint64) bool {
	checkValue(v)
	b := hashBucket(tx, h, v)
	prev := uint64(0)
	curr := tx.Load(b)
	for curr != 0 {
		cv := tx.Load(curr + listVal)
		if cv == v {
			return false
		}
		if cv > v {
			break
		}
		prev = curr
		curr = tx.Load(curr + listNext)
	}
	n := tx.Alloc(listWords)
	tx.Store(n+listVal, v)
	tx.Store(n+listNext, curr)
	if prev == 0 {
		tx.Store(b, n)
	} else {
		tx.Store(prev+listNext, n)
	}
	return true
}

// HashRemove deletes v, reporting whether the set changed.
func HashRemove[T txn.Tx](tx T, h, v uint64) bool {
	checkValue(v)
	b := hashBucket(tx, h, v)
	prev := uint64(0)
	curr := tx.Load(b)
	for curr != 0 {
		cv := tx.Load(curr + listVal)
		if cv == v {
			next := tx.Load(curr + listNext)
			if prev == 0 {
				tx.Store(b, next)
			} else {
				tx.Store(prev+listNext, next)
			}
			tx.Free(curr, listWords)
			return true
		}
		if cv > v {
			return false
		}
		prev = curr
		curr = tx.Load(curr + listNext)
	}
	return false
}

// HashSize counts the elements.
func HashSize[T txn.Tx](tx T, h uint64) int {
	n := 0
	buckets := tx.Load(h)
	for i := uint64(0); i < buckets; i++ {
		curr := tx.Load(h + 1 + i)
		for curr != 0 {
			n++
			curr = tx.Load(curr + listNext)
		}
	}
	return n
}

// HashSet binds a handle into the Set interface.
type HashSet[T txn.Tx] struct{ Handle uint64 }

// Contains implements Set.
func (h HashSet[T]) Contains(tx T, v uint64) bool { return HashContains(tx, h.Handle, v) }

// Insert implements Set.
func (h HashSet[T]) Insert(tx T, v uint64) bool { return HashInsert(tx, h.Handle, v) }

// Remove implements Set.
func (h HashSet[T]) Remove(tx T, v uint64) bool { return HashRemove(tx, h.Handle, v) }

// Size implements Set.
func (h HashSet[T]) Size(tx T) int { return HashSize(tx, h.Handle) }
