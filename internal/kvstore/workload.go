package kvstore

import (
	"fmt"

	"tinystm/internal/harness"
	"tinystm/internal/rng"
	"tinystm/internal/txn"
)

// Mix describes service-shaped KV traffic: a Zipf-skewed key popularity
// over a bounded keyspace and a read/write/CAS/batch operation mix. It is
// the kvstore analogue of harness.IntsetParams, usable both closed-loop
// (harness.StartWorkers / Bench) and open-loop (harness.OpenLoop), and by
// the HTTP load generator (cmd/stmkv-loadgen) over the wire.
type Mix struct {
	// Keys is the keyspace size; operations draw keys in [0, Keys).
	Keys uint64
	// Theta is the Zipfian skew in [0, 1): 0 uniform, 0.99 heavily
	// skewed (YCSB's default).
	Theta float64
	// ReadPct is the percentage of single-key Gets. The remainder splits
	// between CAS (CASPct), atomic batches (BatchPct) and plain Puts.
	ReadPct int
	// CASPct is the percentage of compare-and-swap read-modify-writes.
	CASPct int
	// BatchPct is the percentage of multi-key atomic batches (BatchSize
	// Add ops on distinct Zipf-drawn keys).
	BatchPct int
	// BatchSize is the number of keys per batch (default 4).
	BatchSize int
}

func (x Mix) withDefaults() Mix {
	if x.Keys == 0 {
		x.Keys = 1 << 12
	}
	if x.BatchSize <= 0 {
		x.BatchSize = 4
	}
	return x
}

func (x Mix) validate() error {
	if x.Theta < 0 || x.Theta >= 1 {
		return fmt.Errorf("kvstore: Mix.Theta (%v) must be in [0, 1)", x.Theta)
	}
	if x.ReadPct < 0 || x.CASPct < 0 || x.BatchPct < 0 || x.ReadPct+x.CASPct+x.BatchPct > 100 {
		return fmt.Errorf("kvstore: Mix percentages (%d read, %d cas, %d batch) must be >= 0 and sum <= 100",
			x.ReadPct, x.CASPct, x.BatchPct)
	}
	return nil
}

// String renders the mix for table titles and logs.
func (x Mix) String() string {
	x = x.withDefaults()
	return fmt.Sprintf("keys=%d theta=%.2f read=%d%% cas=%d%% batch=%d%%x%d",
		x.Keys, x.Theta, x.ReadPct, x.CASPct, x.BatchPct, x.BatchSize)
}

// MixOp builds the per-operation function driving m with mix x. Every
// invocation draws a Zipf-skewed key and performs one Get / Put / CAS /
// multi-key batch inside its own atomic block, exactly like a server
// handler would. The Zipf tables are computed once here and shared; all
// per-draw state lives in the worker's generator.
func MixOp[T txn.Tx](sys txn.System[T], m *Map[T], x Mix) harness.OpFunc[T] {
	x = x.withDefaults()
	if err := x.validate(); err != nil {
		panic(err)
	}
	zipf := rng.NewZipf(x.Keys, x.Theta)
	return func(w *Worker, tx T) {
		key := zipf.Next(w.Rng)
		switch p := w.Rng.Intn(100); {
		case p < x.ReadPct:
			sys.AtomicRO(tx, func(tx T) { m.Get(tx, key) })
		case p < x.ReadPct+x.CASPct:
			// Optimistic read-modify-write, the retry loop a client
			// performs over the wire: read, CAS, give up after one miss
			// (the workload measures contention, not client persistence).
			var cur uint64
			var found bool
			sys.AtomicRO(tx, func(tx T) { cur, found = m.Get(tx, key) })
			if found {
				sys.Atomic(tx, func(tx T) { m.CAS(tx, key, cur, cur+1) })
			} else {
				sys.Atomic(tx, func(tx T) { m.Put(tx, key, 1) })
			}
		case p < x.ReadPct+x.CASPct+x.BatchPct:
			sys.Atomic(tx, func(tx T) {
				for i := 0; i < x.BatchSize; i++ {
					m.Add(tx, zipf.Next(w.Rng), 1)
				}
			})
		default:
			sys.Atomic(tx, func(tx T) { m.Put(tx, key, w.Rng.Uint64()) })
		}
	}
}

// Admitter is the update-admission gate MixOpGated passes write
// transactions through (admission.Gate satisfies it). It lives here as a
// one-method-pair interface so kvstore does not import the gate package.
type Admitter interface {
	Enter()
	Exit()
}

// MixOpGated is MixOp with an admission gate in front of every update
// transaction: the op function blocks at the gate before starting a
// write, exactly like a server handler behind admission control, so
// closed-loop experiments measure the gate's effect on goodput. Reads
// are never gated. A nil gate degrades to plain MixOp.
func MixOpGated[T txn.Tx](sys txn.System[T], m *Map[T], x Mix, gate Admitter) harness.OpFunc[T] {
	op := MixOp(sys, m, x)
	if gate == nil {
		return op
	}
	x = x.withDefaults()
	zipf := rng.NewZipf(x.Keys, x.Theta)
	return func(w *Worker, tx T) {
		key := zipf.Next(w.Rng)
		switch p := w.Rng.Intn(100); {
		case p < x.ReadPct:
			sys.AtomicRO(tx, func(tx T) { m.Get(tx, key) })
		case p < x.ReadPct+x.CASPct:
			var cur uint64
			var found bool
			sys.AtomicRO(tx, func(tx T) { cur, found = m.Get(tx, key) })
			gate.Enter()
			if found {
				sys.Atomic(tx, func(tx T) { m.CAS(tx, key, cur, cur+1) })
			} else {
				sys.Atomic(tx, func(tx T) { m.Put(tx, key, 1) })
			}
			gate.Exit()
		case p < x.ReadPct+x.CASPct+x.BatchPct:
			gate.Enter()
			sys.Atomic(tx, func(tx T) {
				for i := 0; i < x.BatchSize; i++ {
					m.Add(tx, zipf.Next(w.Rng), 1)
				}
			})
			gate.Exit()
		default:
			gate.Enter()
			sys.Atomic(tx, func(tx T) { m.Put(tx, key, w.Rng.Uint64()) })
			gate.Exit()
		}
	}
}

// Worker aliases harness.Worker so Op's signature reads naturally.
type Worker = harness.Worker

// Preload inserts every key in [0, keys) with value val, one transaction
// per key (mirroring how a server's store fills: small write sets, many
// commits), growing shards as it goes.
func Preload[T txn.Tx](sys txn.System[T], m *Map[T], keys uint64, val uint64) {
	tx := sys.NewTx()
	defer release(tx)
	for k := uint64(0); k < keys; k++ {
		var grow bool
		sh := m.Shard(k)
		sys.Atomic(tx, func(tx T) {
			m.Put(tx, k, val)
			grow = m.NeedsGrow(tx, sh)
		})
		if grow {
			sys.Atomic(tx, func(tx T) { m.Grow(tx, sh) })
		}
	}
}
