package kvstore

import (
	"fmt"

	"tinystm/internal/txn"
)

// Durability integration. With durability enabled, every Store operation
// records its EFFECTIVE state changes inside the atomic body via the
// STM's redo capture (core.Tx.Redo): a CAS that failed records nothing,
// an Add records the resulting value as a plain put, so replay is a pure
// fold of puts and deletes. The STM hands the records to the installed
// redo hook (the WAL) during commit publication and leaves a durability
// ticket on the descriptor; operations configured to ack-after-durable
// collect that ticket right after their atomic block and block on the
// sink until the commit's log records are fsynced.
//
// Structural transactions — shard growth, recovery loading — are never
// logged: they do not change the logical key/value state.

// DurabilitySink is how a Store waits for one commit's redo records to
// become durable. kvserver backs it with wal.Pending.Wait.
type DurabilitySink interface {
	WaitDurable(t txn.DurableTicket) error
}

// DurabilityError is the panic value of a Store operation whose commit
// could not be made durable: the transaction IS committed in memory, but
// the write-ahead log failed before fsyncing its records, so the write
// must not be acked. Like txn.ErrSpaceExhausted it unwinds to the server
// handler, which maps it to 503 and flips the store into degraded
// read-only mode (the WAL's failure is sticky).
type DurabilityError struct{ Err error }

func (e *DurabilityError) Error() string {
	return fmt.Sprintf("kvstore: commit not durable: %v", e.Err)
}

func (e *DurabilityError) Unwrap() error { return e.Err }

// redoer is the capability surface of a descriptor that supports redo
// capture (core.Tx does; tl2 does not).
type redoer interface {
	Redo(op txn.RedoOp)
	RedoTicket() txn.DurableTicket
}

// positioned is the capability surface for stamping a snapshot scan with
// its (clock epoch, snapshot timestamp) position.
type positioned interface {
	Snapshot() (start, end uint64)
	ClockEpoch() uint64
}

// EnableDurability turns on redo capture for all subsequent mutating
// operations. With a non-nil sink they additionally block until their
// commit is durable before returning (group/sync acks); with a nil sink
// records are captured and handed to the redo hook but nobody waits
// (async acks). Returns an error if the STM's descriptors cannot capture
// redo records. Call before admitting traffic that must be logged; not
// safe to toggle concurrently with operations.
func (s *Store[T]) EnableDurability(sink DurabilitySink) error {
	var zero T
	if _, ok := any(zero).(redoer); !ok {
		return fmt.Errorf("kvstore: STM descriptor %T does not support redo capture", zero)
	}
	s.durable = true
	s.sink = sink
	return nil
}

// redo records one effective state change if durability is on. Must be
// called inside the atomic body: records belong to the current attempt
// and die with it on abort.
func (s *Store[T]) redo(tx T, kind txn.RedoKind, key, val uint64) {
	if !s.durable {
		return
	}
	any(tx).(redoer).Redo(txn.RedoOp{Kind: kind, Key: key, Val: val})
}

// ticket collects the durability ticket of tx's most recent commit. It
// must run IMMEDIATELY after the operation's atomic block — before
// tryGrow, whose follow-up transaction's Begin clears the descriptor's
// ticket.
func (s *Store[T]) ticket(tx T) txn.DurableTicket {
	if !s.durable || s.sink == nil {
		return nil
	}
	return any(tx).(redoer).RedoTicket()
}

// waitDurable blocks until the ticket's records are on stable storage,
// escalating failure as a DurabilityError panic.
func (s *Store[T]) waitDurable(t txn.DurableTicket) {
	if t == nil {
		return
	}
	if err := s.sink.WaitDurable(t); err != nil {
		panic(&DurabilityError{Err: err})
	}
}

// Load bulk-inserts recovered state. Recovery-only: must run before
// EnableDurability (reloading replayed records back into the log would
// double them) and before the store takes traffic.
func (s *Store[T]) Load(pairs map[uint64]uint64) {
	if s.durable {
		panic("kvstore: Load after EnableDurability")
	}
	for k, v := range pairs {
		s.Put(k, v)
	}
}

// CheckpointScan captures the full table in ONE consistent transaction —
// the snapshot a checkpoint may be built from — plus the (clock epoch,
// snapshot timestamp) position it was taken at. ok reports whether the
// scan really was a single consistent snapshot with a known position;
// without snapshot mode or position support it returns ok=false and the
// caller must not checkpoint from it (per-shard fallbacks are not
// mutually consistent).
func (s *Store[T]) CheckpointScan() (pairs map[uint64]uint64, epoch, ts uint64, ok bool) {
	var zero T
	if _, can := any(zero).(positioned); !can || s.snap == nil {
		return nil, 0, 0, false
	}
	tx := s.pool.Get()
	defer s.pool.Put(tx)
	s.snap.AtomicSnap(tx, func(tx T) {
		pairs = make(map[uint64]uint64)
		p := any(tx).(positioned)
		ts, _ = p.Snapshot()
		epoch = p.ClockEpoch()
		s.m.Range(tx, func(k, v uint64) bool {
			pairs[k] = v
			return true
		})
	})
	return pairs, epoch, ts, true
}
