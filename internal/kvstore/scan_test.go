package kvstore

import (
	"sync"
	"sync/atomic"
	"testing"

	"tinystm/internal/core"
	"tinystm/internal/mem"
	"tinystm/internal/txn"
)

func newSnapTM(t testing.TB, words int) *core.TM {
	t.Helper()
	return core.MustNew(core.Config{
		Space:          mem.NewSpace(words),
		Snapshots:      true,
		SnapshotBudget: 4096,
	})
}

func TestScanReturnsWholeTable(t *testing.T) {
	for _, snap := range []bool{false, true} {
		name := "classic-ro"
		if snap {
			name = "snapshot"
		}
		t.Run(name, func(t *testing.T) {
			var tm *core.TM
			if snap {
				tm = newSnapTM(t, 1<<20)
			} else {
				tm = newTM(t, core.WriteBack, 1<<20)
			}
			s := NewStore[*core.Tx](tm, 4, 4)
			defer s.Close()
			const n = 500
			for k := uint64(0); k < n; k++ {
				s.Put(k, k*3)
			}
			before := tm.Stats().Commits
			pairs, total := s.Scan(0)
			if total != n || len(pairs) != n {
				t.Fatalf("Scan = %d pairs, total %d, want %d", len(pairs), total, n)
			}
			// Snapshot mode scans in ONE transaction; without a sidecar
			// (core.TM satisfies SnapshotSystem regardless, so the type
			// assertion alone would lie) the bounded per-shard fallback
			// must run one read-only transaction per shard.
			wantCommits := uint64(1)
			if !snap {
				wantCommits = 4 // shards
			}
			if got := tm.Stats().Commits - before; got != wantCommits {
				t.Fatalf("Scan ran %d transactions, want %d (snapshots=%v)", got, wantCommits, snap)
			}
			seen := make(map[uint64]uint64, n)
			for _, kv := range pairs {
				seen[kv.Key] = kv.Val
			}
			for k := uint64(0); k < n; k++ {
				if seen[k] != k*3 {
					t.Fatalf("key %d = %d, want %d", k, seen[k], k*3)
				}
			}
			// A limited scan truncates pairs but still counts everything.
			pairs, total = s.Scan(10)
			if len(pairs) != 10 || total != n {
				t.Fatalf("Scan(10) = %d pairs, total %d, want 10, %d", len(pairs), total, n)
			}
		})
	}
}

// TestScanWaitFreeUnderWriters pins the tentpole property end to end at
// the store layer: full-table scans running against concurrent writers
// complete without a single read-validation abort when the MVCC sidecar
// is on — every scan observes one consistent snapshot (sum conservation)
// and the only tolerated abort kind is a bounded snapshot-too-old retry.
func TestScanWaitFreeUnderWriters(t *testing.T) {
	tm := newSnapTM(t, 1<<20)
	s := NewStore[*core.Tx](tm, 4, 16)
	defer s.Close()
	const keys = 256
	// Balance: total value across keys is invariant under the writers'
	// transfers, so any consistent snapshot sums to the same value.
	for k := uint64(0); k < keys; k++ {
		s.Put(k, 100)
	}
	const wantSum = keys * 100

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			tx := tm.NewTx()
			defer tx.Release()
			x := seed
			for !stop.Load() {
				x = x*6364136223846793005 + 1
				from, to := (x>>8)%keys, (x>>40)%keys
				if from == to {
					// A self-transfer would apply +1 net (tv was read
					// before the first Put), breaking the invariant.
					continue
				}
				tm.Atomic(tx, func(tx *core.Tx) {
					fv, _ := s.Map().Get(tx, from)
					if fv == 0 {
						return
					}
					tv, _ := s.Map().Get(tx, to)
					s.Map().Put(tx, from, fv-1)
					s.Map().Put(tx, to, tv+1)
				})
			}
		}(uint64(w + 1))
	}

	// Scans on a dedicated descriptor so its abort counters are
	// attributable (writers legitimately rack up conflict/extension
	// aborts of their own).
	scanTx := tm.NewTx()
	for i := 0; i < 50; i++ {
		var sum, total uint64
		tm.AtomicSnap(scanTx, func(tx *core.Tx) {
			sum, total = 0, 0
			s.Map().Range(tx, func(_, v uint64) bool {
				total++
				sum += v
				return true
			})
		})
		if total != keys {
			t.Fatalf("scan %d walked %d keys, want %d", i, total, keys)
		}
		if sum != wantSum {
			t.Fatalf("scan %d: inconsistent snapshot, sum %d want %d", i, sum, wantSum)
		}
		// The Store.Scan path must hold the same invariant.
		pairs, n := s.Scan(0)
		if n != keys {
			t.Fatalf("Store.Scan %d walked %d keys, want %d", i, n, keys)
		}
		sum = 0
		for _, kv := range pairs {
			sum += kv.Val
		}
		if sum != wantSum {
			t.Fatalf("Store.Scan %d: inconsistent snapshot, sum %d want %d", i, sum, wantSum)
		}
	}
	stop.Store(true)
	wg.Wait()
	// The scan descriptor may only ever abort snapshot-too-old (bounded
	// retries); the validation/extension aborts of a classic read-only
	// scan must be zero.
	st := scanTx.TxStats()
	for k, n := range st.AbortsByKind {
		if n != 0 && txn.AbortKind(k) != txn.AbortSnapshotTooOld {
			t.Fatalf("scan descriptor aborted %d times with kind %v", n, txn.AbortKind(k))
		}
	}
	scanTx.Release()
}

// TestApplyAllGetSnapshot checks the batch read fast path sees one
// consistent snapshot and that mixed batches still work.
func TestApplyAllGetSnapshot(t *testing.T) {
	tm := newSnapTM(t, 1<<20)
	s := NewStore[*core.Tx](tm, 2, 4)
	defer s.Close()
	s.Put(1, 10)
	s.Put(2, 20)
	res := s.Apply([]Op{{Kind: OpGet, Key: 1}, {Kind: OpGet, Key: 2}, {Kind: OpGet, Key: 3}})
	if !res[0].Found || res[0].Val != 10 || !res[1].Found || res[1].Val != 20 || res[2].Found {
		t.Fatalf("all-Get batch results %+v", res)
	}
	st := tm.Stats()
	if st.SnapshotLiveReads == 0 {
		t.Fatal("all-Get batch did not run in snapshot mode")
	}
	res = s.Apply([]Op{{Kind: OpAdd, Key: 1, Val: 5}, {Kind: OpGet, Key: 1}})
	if res[1].Val != 15 {
		t.Fatalf("mixed batch read %d, want 15", res[1].Val)
	}
}
