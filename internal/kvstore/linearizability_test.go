package kvstore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tinystm/internal/core"
	"tinystm/internal/mem"
	"tinystm/internal/rng"
)

// TestBatchTransfersConserveSum is the linearizability-style check for
// multi-key atomic batches: workers move value between Zipf-hot accounts
// with two-Add batches while auditors snapshot-read every account in one
// batch. Atomicity + snapshot isolation means every audit must observe
// the exact initial total; a torn batch (one Add visible without its
// counterpart) or a non-snapshot read would break the sum. Run under
// -race in CI.
func TestBatchTransfersConserveSum(t *testing.T) {
	for _, d := range []core.Design{core.WriteBack, core.WriteThrough} {
		t.Run(d.String(), func(t *testing.T) {
			tm := core.MustNew(core.Config{Space: mem.NewSpace(1 << 18), Design: d})
			s := NewStore[*core.Tx](tm, 4, 8)
			defer s.Close()

			const accounts = 64
			const initial = 1000
			for k := uint64(0); k < accounts; k++ {
				s.Put(k, initial)
			}
			const wantTotal = accounts * initial

			var stop atomic.Bool
			var audits atomic.Uint64
			var wg sync.WaitGroup
			errs := make(chan error, 8)

			// Transfer workers: atomic two-account moves.
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					r := rng.NewThread(7, id)
					for !stop.Load() {
						from := r.Uint64n(accounts)
						to := r.Uint64n(accounts)
						amt := r.Uint64n(10) + 1
						s.Apply([]Op{
							{Kind: OpAdd, Key: from, Val: ^(amt - 1)}, // -amt
							{Kind: OpAdd, Key: to, Val: amt},
						})
					}
				}(i)
			}

			// Auditors: one read-only batch over every account.
			ops := make([]Op, accounts)
			for k := range ops {
				ops[k] = Op{Kind: OpGet, Key: uint64(k)}
			}
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !stop.Load() {
						res := s.Apply(ops)
						var total uint64
						for _, r := range res {
							if !r.Found {
								select {
								case errs <- fmt.Errorf("audit found a missing account"):
								default:
								}
								return
							}
							total += r.Val
						}
						if total != wantTotal {
							select {
							case errs <- fmt.Errorf("audit observed torn total %d, want %d", total, wantTotal):
								// Total conservation is the whole invariant.
							default:
							}
							return
						}
						audits.Add(1)
					}
				}()
			}

			for audits.Load() < 200 {
				select {
				case err := <-errs:
					stop.Store(true)
					wg.Wait()
					t.Fatal(err)
				default:
					time.Sleep(time.Millisecond)
				}
			}
			stop.Store(true)
			wg.Wait()
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
			if v, _ := s.Get(0); v == 0 && s.Len() != accounts {
				t.Fatalf("accounts vanished: Len=%d", s.Len())
			}
		})
	}
}

// TestCASIncrementsAreExact runs the classic atomicity counter: every
// increment goes through an optimistic Get+CAS retry loop, so lost
// updates would show immediately in the final value.
func TestCASIncrementsAreExact(t *testing.T) {
	tm := core.MustNew(core.Config{Space: mem.NewSpace(1 << 16)})
	s := NewStore[*core.Tx](tm, 2, 4)
	defer s.Close()
	s.Put(42, 0)

	const workers = 4
	const perWorker = 500
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < perWorker; n++ {
				for {
					cur, _ := s.Get(42)
					if s.CAS(42, cur, cur+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if v, _ := s.Get(42); v != workers*perWorker {
		t.Fatalf("lost updates: counter = %d, want %d", v, workers*perWorker)
	}
}
