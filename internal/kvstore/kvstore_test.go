package kvstore

import (
	"fmt"
	"testing"

	"tinystm/internal/core"
	"tinystm/internal/mem"
	"tinystm/internal/rng"
)

func newTM(t testing.TB, d core.Design, words int) *core.TM {
	t.Helper()
	return core.MustNew(core.Config{Space: mem.NewSpace(words), Design: d})
}

// TestMapAgainstModel drives random operations against a plain Go map and
// checks every observable result, across both memory designs and both a
// single-shard and a sharded layout.
func TestMapAgainstModel(t *testing.T) {
	for _, d := range []core.Design{core.WriteBack, core.WriteThrough} {
		for _, shards := range []uint64{1, 8} {
			t.Run(fmt.Sprintf("%v/shards=%d", d, shards), func(t *testing.T) {
				tm := newTM(t, d, 1<<20)
				s := NewStore[*core.Tx](tm, shards, 4)
				defer s.Close()
				model := map[uint64]uint64{}
				r := rng.New(99)
				const keyRange = 512
				for i := 0; i < 20000; i++ {
					k := r.Uint64n(keyRange)
					switch r.Intn(10) {
					case 0, 1, 2: // put
						v := r.Uint64()
						_, had := model[k]
						if ins := s.Put(k, v); ins == had {
							t.Fatalf("op %d: Put(%d) inserted=%v, model had=%v", i, k, ins, had)
						}
						model[k] = v
					case 3: // delete
						_, had := model[k]
						if found := s.Delete(k); found != had {
							t.Fatalf("op %d: Delete(%d) found=%v, model had=%v", i, k, found, had)
						}
						delete(model, k)
					case 4: // cas
						old, had := model[k]
						nv := r.Uint64()
						ok := s.CAS(k, old, nv)
						if ok != had {
							t.Fatalf("op %d: CAS(%d, old=%d) ok=%v, model had=%v", i, k, old, ok, had)
						}
						if had {
							model[k] = nv
						}
					case 5: // add
						nv := s.Add(k, 3)
						model[k] += 3
						if model[k] == 3 && nv != 3 {
							// inserted fresh
							t.Fatalf("op %d: Add(%d) fresh returned %d", i, k, nv)
						}
						if nv != model[k] {
							t.Fatalf("op %d: Add(%d) = %d, model %d", i, k, nv, model[k])
						}
					default: // get
						v, found := s.Get(k)
						mv, had := model[k]
						if found != had || (had && v != mv) {
							t.Fatalf("op %d: Get(%d) = (%d,%v), model (%d,%v)", i, k, v, found, mv, had)
						}
					}
				}
				if n := s.Len(); n != uint64(len(model)) {
					t.Fatalf("Len = %d, model %d", n, len(model))
				}
				for k, v := range model {
					got, found := s.Get(k)
					if !found || got != v {
						t.Fatalf("final Get(%d) = (%d,%v), want (%d,true)", k, got, found, v)
					}
				}
			})
		}
	}
}

// TestGrowPreservesContents forces directory doublings and verifies no key
// is lost or duplicated, and that directories actually grew.
func TestGrowPreservesContents(t *testing.T) {
	tm := newTM(t, core.WriteBack, 1<<20)
	s := NewStore[*core.Tx](tm, 2, 2)
	defer s.Close()
	const n = 4000
	for k := uint64(0); k < n; k++ {
		s.Put(k, k*7)
	}
	tx := tm.NewTx()
	defer tx.Release()
	var b0, b1 uint64
	tm.AtomicRO(tx, func(tx *core.Tx) {
		_, b0 = s.Map().ShardLoad(tx, 0)
		_, b1 = s.Map().ShardLoad(tx, 1)
	})
	if b0 <= 2 || b1 <= 2 {
		t.Fatalf("directories never grew: buckets = %d, %d", b0, b1)
	}
	if got := s.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for k := uint64(0); k < n; k++ {
		if v, found := s.Get(k); !found || v != k*7 {
			t.Fatalf("Get(%d) = (%d,%v) after growth", k, v, found)
		}
	}
}

// TestApplyBatchSemantics checks positional results and that a batch's
// reads come from one snapshot that includes the batch's own writes.
func TestApplyBatchSemantics(t *testing.T) {
	tm := newTM(t, core.WriteBack, 1<<18)
	s := NewStore[*core.Tx](tm, 4, 4)
	defer s.Close()
	s.Put(1, 10)
	s.Put(2, 20)

	res := s.Apply([]Op{
		{Kind: OpGet, Key: 1},
		{Kind: OpPut, Key: 3, Val: 30},
		{Kind: OpGet, Key: 3}, // sees the batch's own put
		{Kind: OpCAS, Key: 2, Old: 20, Val: 21},
		{Kind: OpGet, Key: 2},         // sees the CAS result
		{Kind: OpAdd, Key: 4, Val: 5}, // fresh insert via add
		{Kind: OpDelete, Key: 1},
		{Kind: OpGet, Key: 1},                 // sees the delete
		{Kind: OpCAS, Key: 9, Old: 0, Val: 1}, // absent key: fails
	})
	type exp struct {
		val   uint64
		found bool
		ok    bool
	}
	want := []exp{
		{10, true, false},
		{0, false, true},
		{30, true, false},
		{0, false, true},
		{21, true, false},
		{5, false, true},
		{0, true, false},
		{0, false, false},
		{0, false, false},
	}
	for i, w := range want {
		g := res[i]
		if g.Val != w.val || g.Found != w.found || g.OK != w.ok {
			t.Fatalf("op %d: got %+v, want %+v", i, g, w)
		}
	}
	if n := s.Len(); n != 3 { // keys 2, 3, 4
		t.Fatalf("Len after batch = %d, want 3", n)
	}
}

func TestApplyReadOnlyBatchUsesROPath(t *testing.T) {
	tm := newTM(t, core.WriteBack, 1<<18)
	s := NewStore[*core.Tx](tm, 2, 4)
	defer s.Close()
	s.Put(5, 55)
	before := tm.Stats()
	res := s.Apply([]Op{{Kind: OpGet, Key: 5}, {Kind: OpGet, Key: 6}})
	if !res[0].Found || res[0].Val != 55 || res[1].Found {
		t.Fatalf("read-only batch results wrong: %+v", res)
	}
	delta := tm.Stats().Sub(before)
	if delta.Commits != 1 {
		t.Fatalf("read-only batch should be one commit, got %d", delta.Commits)
	}
}

func TestMixOpDrivesAllPaths(t *testing.T) {
	tm := newTM(t, core.WriteBack, 1<<20)
	s := NewStore[*core.Tx](tm, 4, 8)
	defer s.Close()
	Preload[*core.Tx](tm, s.Map(), 256, 1)
	op := MixOp[*core.Tx](tm, s.Map(), Mix{
		Keys: 256, Theta: 0.9, ReadPct: 50, CASPct: 20, BatchPct: 10, BatchSize: 3,
	})
	tx := tm.NewTx()
	defer tx.Release()
	w := &Worker{ID: 0, Rng: rng.New(4)}
	for i := 0; i < 2000; i++ {
		op(w, tx)
	}
	if s.Len() < 256 {
		t.Fatalf("mix deleted keys it should not: Len=%d", s.Len())
	}
	if c, _ := tm.CommitAbortCounts(); c < 2000 {
		t.Fatalf("expected >= one commit per op, got %d", c)
	}
}
