package kvstore

import (
	"sync"
	"testing"

	"tinystm/internal/core"
	"tinystm/internal/mem"
	"tinystm/internal/rng"
	"tinystm/internal/txn"
	"tinystm/internal/wal"
)

// walTestSink acks an operation once its commit's redo records are
// fsynced — the same adapter kvserver uses.
type walTestSink struct{ log *wal.Log }

func (s walTestSink) WaitDurable(t txn.DurableTicket) error { return t.(*wal.Pending).Wait() }

// durableStore wires the full group-commit path on an in-memory
// filesystem: TM redo hook -> wal.Log -> sink the store blocks on.
func durableStore(t *testing.T, fs *wal.MemFS, snapshots bool) (*Store[*core.Tx], *wal.Log, *core.TM) {
	t.Helper()
	tm := core.MustNew(core.Config{
		Space: mem.NewSpace(1 << 20), Design: core.WriteBack, Snapshots: snapshots,
	})
	s := NewStore[*core.Tx](tm, 4, 8)
	l, err := wal.Open(wal.Config{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	if err := s.EnableDurability(walTestSink{log: l}); err != nil {
		t.Fatalf("EnableDurability: %v", err)
	}
	tm.SetRedoHook(func(epoch, ts uint64, ops []txn.RedoOp) txn.DurableTicket {
		return l.Append(epoch, ts, ops)
	})
	return s, l, tm
}

// TestEffectiveWriteSemantics pins down what gets logged: effective state
// changes only. A failed CAS and a Delete of a missing key leave no
// record; an Add logs its RESULT as a plain put, so replay never has to
// re-execute arithmetic.
func TestEffectiveWriteSemantics(t *testing.T) {
	fs := wal.NewMemFS()
	s, l, tm := durableStore(t, fs, false)
	defer s.Close()

	s.Put(1, 5)
	if s.CAS(1, 999, 7) {
		t.Fatal("CAS with wrong old value succeeded")
	}
	if !s.CAS(1, 5, 9) {
		t.Fatal("CAS with right old value failed")
	}
	s.Add(2, 7)
	s.Add(2, 3)
	if s.Delete(3) {
		t.Fatal("Delete of missing key reported found")
	}
	s.Delete(1)

	tm.SetRedoHook(nil)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	state, stats, err := wal.Replay(fs, "wal")
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	// put(1,5), cas->9, add->7, add->10, delete(1): survivors {2:10}.
	if len(state) != 1 || state[2] != 10 {
		t.Fatalf("replayed state = %v, want map[2:10]", state)
	}
	// 5 effective writes; the failed CAS and missed Delete logged nothing.
	if stats.Ops != 5 {
		t.Fatalf("replayed %d ops, want 5 (stats %+v)", stats.Ops, stats)
	}
}

// TestAckedStoreOpsSurviveKillAtAnyPoint is the end-to-end durability
// property at the Store surface: sweep the crash point across every WAL
// write the workload produces; whatever the Store acked before the crash
// must be exactly the state recovery rebuilds — nothing lost, and nothing
// unacked resurrected.
func TestAckedStoreOpsSurviveKillAtAnyPoint(t *testing.T) {
	const ops = 30
	for n := 1; ; n++ {
		fs := wal.NewMemFS()
		s, l, tm := durableStore(t, fs, false)
		// Arm after Open so the segment header is already durable and the
		// n-th DATA write is the one that tears.
		fs.CrashAtWrite(n)

		model := map[uint64]uint64{}
		r := rng.New(uint64(n))
		crashed := false
		for i := 0; i < ops && !crashed; i++ {
			k := r.Uint64n(7)
			// An op that panics with DurabilityError committed in memory
			// but was never acked; it must not appear after recovery.
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						if _, ok := rec.(*DurabilityError); !ok {
							panic(rec)
						}
						crashed = true
					}
				}()
				switch r.Intn(4) {
				case 0:
					v := r.Uint64n(1000)
					s.Put(k, v)
					model[k] = v
				case 1:
					s.Delete(k)
					delete(model, k)
				case 2:
					model[k] = s.Add(k, 3)
				default:
					old, had := model[k]
					if s.CAS(k, old, old+1) != had {
						t.Fatalf("crash %d op %d: CAS disagreed with model", n, i)
					}
					if had {
						model[k] = old + 1
					}
				}
			}()
		}
		tm.SetRedoHook(nil)
		l.Close()
		s.Close()

		if !crashed {
			// The sweep passed the end of the workload's writes: done.
			return
		}
		fs.Crash(2) // restart with a couple of torn bytes past the durable prefix
		state, _, err := wal.Replay(fs, "wal")
		if err != nil {
			t.Fatalf("crash at write %d: Replay: %v", n, err)
		}
		for k, v := range model {
			if got, ok := state[k]; !ok || got != v {
				t.Fatalf("crash at write %d: acked %d=%d, recovered %v", n, k, v, state)
			}
		}
		if len(state) != len(model) {
			t.Fatalf("crash at write %d: recovered extra keys: state=%v acked=%v", n, state, model)
		}
	}
}

// TestCheckpointTruncateEquivalence runs the full checkpoint-then-truncate
// protocol repeatedly UNDER concurrent writers and checks the invariant
// the protocol promises: at every moment, {newest checkpoint + surviving
// segments} replays to a state consistent with what was acked. Run with
// -race this also proves CheckpointScan coexists with the redo hook.
func TestCheckpointTruncateEquivalence(t *testing.T) {
	fs := wal.NewMemFS()
	s, l, tm := durableStore(t, fs, true) // snapshots on: CheckpointScan must work
	defer s.Close()

	const writers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w) + 1)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := r.Uint64n(64)
				switch i % 3 {
				case 0:
					s.Put(k, r.Uint64n(1000))
				case 1:
					s.Add(k, 1)
				default:
					s.Delete(k)
				}
			}
		}(w)
	}

	ckptIdx := uint64(1)
	for round := 0; round < 5; round++ {
		segIdx, err := l.Rotate()
		if err != nil {
			t.Fatalf("round %d: Rotate: %v", round, err)
		}
		pairs, epoch, ts, ok := s.CheckpointScan()
		if !ok {
			t.Fatal("CheckpointScan not available with snapshots on")
		}
		if err := wal.WriteCheckpoint(fs, "wal", ckptIdx, epoch, ts, pairs); err != nil {
			t.Fatalf("round %d: WriteCheckpoint: %v", round, err)
		}
		if err := l.DropSegmentsBefore(segIdx); err != nil {
			t.Fatalf("round %d: DropSegmentsBefore: %v", round, err)
		}
		if err := wal.RemoveCheckpointsBefore(fs, "wal", ckptIdx); err != nil {
			t.Fatalf("round %d: RemoveCheckpointsBefore: %v", round, err)
		}
		ckptIdx++
	}

	close(stop)
	wg.Wait()
	tm.SetRedoHook(nil)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Quiesced: replay of the truncated log must equal the live table.
	want, _, _, ok := s.CheckpointScan()
	if !ok {
		t.Fatal("final CheckpointScan failed")
	}
	state, stats, err := wal.Replay(fs, "wal")
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !stats.CheckpointFound {
		t.Fatalf("no checkpoint found after %d rounds (stats %+v)", ckptIdx-1, stats)
	}
	if len(state) != len(want) {
		t.Fatalf("replayed %d keys, live table has %d", len(state), len(want))
	}
	for k, v := range want {
		if state[k] != v {
			t.Fatalf("key %d: replayed %d, live %d", k, state[k], v)
		}
	}
}

// TestLoadAfterEnableDurabilityPanics: reloading replayed records through
// a live log would double them; the guard must be loud.
func TestLoadAfterEnableDurabilityPanics(t *testing.T) {
	tm := core.MustNew(core.Config{Space: mem.NewSpace(1 << 18), Design: core.WriteBack})
	s := NewStore[*core.Tx](tm, 2, 4)
	defer s.Close()
	if err := s.EnableDurability(nil); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Load after EnableDurability did not panic")
		}
	}()
	s.Load(map[uint64]uint64{1: 1})
}
