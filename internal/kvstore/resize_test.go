package kvstore

import (
	"sync"
	"sync/atomic"
	"testing"

	"tinystm/internal/core"
	"tinystm/internal/mem"
	"tinystm/internal/rng"
)

// TestResizeUnderLoad stresses the freeze/rehash path: inserters push
// every shard through multiple directory doublings while readers hammer
// already-inserted keys. A reader racing a Grow must either see the old
// directory or the new one — a key observed missing after its insert
// committed means the rehash tore.
func TestResizeUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	tm := core.MustNew(core.Config{Space: mem.NewSpace(1 << 20)})
	s := NewStore[*core.Tx](tm, 2, 2) // tiny directories: growth is constant
	defer s.Close()

	const writers = 4
	const perWriter = 2000
	var progress [writers]atomic.Uint64 // committed-insert high-water mark per writer
	var writeWg, readWg sync.WaitGroup
	var readErr atomic.Pointer[string]

	for i := 0; i < writers; i++ {
		writeWg.Add(1)
		go func(id int) {
			defer writeWg.Done()
			base := uint64(id) * perWriter
			for n := uint64(0); n < perWriter; n++ {
				s.Put(base+n, base+n+1)
				progress[id].Store(n + 1)
			}
		}(i)
	}

	var stop atomic.Bool
	readWg.Add(1)
	go func() {
		defer readWg.Done()
		r := rng.New(17)
		for !stop.Load() {
			// Read a key its writer has already committed.
			id := r.Uint64n(writers)
			done := progress[id].Load()
			if done == 0 {
				continue
			}
			k := id*perWriter + r.Uint64n(done)
			if v, found := s.Get(k); !found || v != k+1 {
				msg := "reader lost key during resize"
				readErr.Store(&msg)
				return
			}
		}
	}()

	writeWg.Wait()
	stop.Store(true)
	readWg.Wait()
	if msg := readErr.Load(); msg != nil {
		t.Fatal(*msg)
	}

	if got := s.Len(); got != writers*perWriter {
		t.Fatalf("Len = %d, want %d", got, writers*perWriter)
	}
	tx := tm.NewTx()
	defer tx.Release()
	var grew bool
	tm.AtomicRO(tx, func(tx *core.Tx) {
		for sh := uint64(0); sh < s.Map().Shards(); sh++ {
			if _, b := s.Map().ShardLoad(tx, sh); b > 2 {
				grew = true
			}
		}
	})
	if !grew {
		t.Fatal("no shard ever grew under load")
	}
	for k := uint64(0); k < writers*perWriter; k++ {
		if v, found := s.Get(k); !found || v != k+1 {
			t.Fatalf("Get(%d) = (%d,%v) after the dust settled", k, v, found)
		}
	}
}

// TestGrowFailureIsBestEffort sizes the arena so every 3-word node still
// fits but the doubled 256-word directory cannot: growth must fail
// silently (the insert already committed) and the store must keep
// serving with longer chains instead of panicking out of Put.
func TestGrowFailureIsBestEffort(t *testing.T) {
	// 1 reserved word + 8 header + 128 dir + n*3 nodes; at the growth
	// trigger (count 513) the free space is ~24 words < 256.
	tm := core.MustNew(core.Config{Space: mem.NewSpace(1700)})
	s := NewStore[*core.Tx](tm, 1, 128)
	defer s.Close()
	const n = 518
	for k := uint64(0); k < n; k++ {
		s.Put(k, k+1) // must not panic even after growth starts failing
	}
	tx := tm.NewTx()
	defer tx.Release()
	var count, buckets uint64
	tm.AtomicRO(tx, func(tx *core.Tx) { count, buckets = s.Map().ShardLoad(tx, 0) })
	if buckets != 128 {
		t.Fatalf("directory grew to %d buckets in a full arena", buckets)
	}
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
	for k := uint64(0); k < n; k++ {
		if v, found := s.Get(k); !found || v != k+1 {
			t.Fatalf("Get(%d) = (%d,%v) after failed growth", k, v, found)
		}
	}
}
