package kvstore

import (
	"sync"
	"testing"

	"tinystm/internal/core"
	"tinystm/internal/mem"
)

// TestTxPoolBoundsMinting is the server-path regression for the PR 2
// slot-exhaustion fix: tens of thousands of simulated handler lifetimes
// (borrow a descriptor, run one transaction, return it) must mint no more
// descriptors than the peak concurrency — a per-request NewTx without
// Release would blow through maxSlots (2^14) and panic the TM.
func TestTxPoolBoundsMinting(t *testing.T) {
	tm := core.MustNew(core.Config{Space: mem.NewSpace(1 << 16)})
	s := NewStore[*core.Tx](tm, 2, 4)
	defer s.Close()

	const handlers = 8
	const requests = 40000 // well past maxSlots = 16384
	var wg sync.WaitGroup
	per := requests / handlers
	for i := 0; i < handlers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for n := 0; n < per; n++ {
				k := uint64(id*per + n)
				s.Put(k%128, k)
				s.Get(k % 128)
			}
		}(i)
	}
	wg.Wait()

	minted, _ := tm.DescriptorCounts()
	// 1 setup descriptor (NewStore's Map build) + at most one per
	// concurrently active handler per op; generous 4x slack for races.
	if minted > 4*handlers+1 {
		t.Fatalf("pool failed to bound descriptor minting: %d minted for %d concurrent handlers",
			minted, handlers)
	}
}

// TestStoreCloseReleasesDescriptors asserts the satellite requirement
// directly: after Close, every descriptor the store ever pooled is back on
// the TM free list, so a server shutdown leaks no slots.
func TestStoreCloseReleasesDescriptors(t *testing.T) {
	tm := core.MustNew(core.Config{Space: mem.NewSpace(1 << 16)})
	s := NewStore[*core.Tx](tm, 2, 4)
	for k := uint64(0); k < 100; k++ {
		s.Put(k, k)
	}
	s.Close()
	minted, free := tm.DescriptorCounts()
	if minted != free {
		t.Fatalf("store leaked descriptors: minted=%d free=%d", minted, free)
	}
}

// TestTxPoolPutAfterClose: a borrower returning its descriptor after
// shutdown must release it to the TM rather than resurrect the pool.
func TestTxPoolPutAfterClose(t *testing.T) {
	tm := core.MustNew(core.Config{Space: mem.NewSpace(1 << 12)})
	p := NewTxPool[*core.Tx](tm)
	tx := p.Get()
	p.Close()
	p.Put(tx)
	if p.Idle() != 0 {
		t.Fatalf("descriptor pooled after Close")
	}
	minted, free := tm.DescriptorCounts()
	if minted != 1 || free != 1 {
		t.Fatalf("late Put not released: minted=%d free=%d", minted, free)
	}
}
