package kvstore

import (
	"fmt"

	"tinystm/internal/obs"
	"tinystm/internal/txn"
)

// OpKind names one batch operation.
type OpKind int

// The batch operation set.
const (
	OpGet OpKind = iota
	OpPut
	OpDelete
	OpCAS
	OpAdd
)

// String returns the wire name used by cmd/stmkvd's batch endpoint.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpCAS:
		return "cas"
	case OpAdd:
		return "add"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// ParseOpKind maps a wire name to an OpKind.
func ParseOpKind(s string) (OpKind, error) {
	switch s {
	case "get":
		return OpGet, nil
	case "put":
		return OpPut, nil
	case "delete", "del":
		return OpDelete, nil
	case "cas":
		return OpCAS, nil
	case "add", "incr":
		return OpAdd, nil
	default:
		return 0, fmt.Errorf("kvstore: unknown op %q (get, put, delete, cas, add)", s)
	}
}

// Op is one operation of a multi-key atomic batch. Val is the value for
// Put, the delta for Add, and the new value for CAS; Old is CAS's expected
// value.
type Op struct {
	Kind OpKind
	Key  uint64
	Val  uint64
	Old  uint64
}

// OpResult is the outcome of one batch operation: Val carries Get's value
// (and Add's result), Found whether Get/Delete found the key, OK whether
// CAS succeeded / Put inserted.
type OpResult struct {
	Val   uint64
	Found bool
	OK    bool
}

// Store binds a Map to its STM and a descriptor pool, exposing the
// self-contained operations a server handler calls: each runs exactly one
// atomic block on a pooled descriptor. The transactional Map methods
// remain available for callers composing their own blocks.
type Store[T txn.Tx] struct {
	sys  txn.System[T]
	m    *Map[T]
	pool *TxPool[T]
	// snap is sys's snapshot view when it provides one (TinySTM with
	// Config.Snapshots): multi-key read-only work — all-Get batches, Len,
	// Scan — then runs in MVCC snapshot mode, wait-free under write
	// pressure, instead of as classic read-only transactions that abort
	// whenever a concurrent writer moves the clock past their snapshot.
	snap txn.SnapshotSystem[T]
	// durable/sink: redo capture and ack-after-durable waiting; see
	// durable.go. Set once via EnableDurability before traffic starts.
	durable bool
	sink    DurabilitySink
	// heat, when attached (SetShardHeat), receives one op plus the retry
	// count per single-key operation, keyed by shard — the server's
	// contention heat map. Nil costs every op one predictable branch.
	heat *obs.ShardHeat
}

// NewStore builds the Map inside sys and wraps it.
func NewStore[T txn.Tx](sys txn.System[T], shards, buckets uint64) *Store[T] {
	s := &Store[T]{sys: sys, m: New[T](sys, shards, buckets), pool: NewTxPool[T](sys)}
	// The type assertion alone is not enough: core.TM satisfies the
	// interface even with the sidecar disabled (AtomicSnap then degrades
	// to AtomicRO), and Scan's bounded per-shard fallback must engage in
	// exactly that case.
	if ss, ok := sys.(txn.SnapshotSystem[T]); ok && ss.SnapshotsEnabled() {
		s.snap = ss
	}
	return s
}

// atomicRO runs body as a snapshot transaction when the system offers
// snapshot mode, as a classic read-only transaction otherwise.
func (s *Store[T]) atomicRO(tx T, body func(T)) {
	if s.snap != nil {
		s.snap.AtomicSnap(tx, body)
		return
	}
	s.sys.AtomicRO(tx, body)
}

// SetShardHeat attaches the per-shard heat map (sized for this store via
// NewShardHeat(Map().Shards())). Attach before traffic starts.
func (s *Store[T]) SetShardHeat(h *obs.ShardHeat) { s.heat = h }

// noteHeat records one finished single-key op against its shard.
func (s *Store[T]) noteHeat(sh uint64, attempts int) {
	if s.heat != nil {
		s.heat.Record(sh, attempts)
	}
}

// Map exposes the underlying transactional map.
func (s *Store[T]) Map() *Map[T] { return s.m }

// Close releases the pooled descriptors back to the TM. The Store must be
// idle.
func (s *Store[T]) Close() { s.pool.Close() }

// Get returns key's value via a read-only transaction.
func (s *Store[T]) Get(key uint64) (val uint64, found bool) {
	tx := s.pool.Get()
	defer s.pool.Put(tx)
	attempts := 0
	s.sys.AtomicRO(tx, func(tx T) {
		//stm:allow-effect heat-map retry counter: monotone, reported after commit, never read in-body
		attempts++
		val, found = s.m.Get(tx, key)
	})
	s.noteHeat(s.m.Shard(key), attempts)
	return val, found
}

// Put upserts key and reports whether it was inserted. When the insert
// tips the owning shard over its load factor, the shard is grown in a
// follow-up freeze/rehash transaction before Put returns.
func (s *Store[T]) Put(key, val uint64) (inserted bool) {
	var grow bool
	tx := s.pool.Get()
	defer s.pool.Put(tx)
	sh := s.m.Shard(key)
	attempts := 0
	s.sys.Atomic(tx, func(tx T) {
		//stm:allow-effect heat-map retry counter: monotone, reported after commit, never read in-body
		attempts++
		inserted = s.m.Put(tx, key, val)
		grow = inserted && s.m.NeedsGrow(tx, sh)
		s.redo(tx, txn.RedoPut, key, val)
	})
	s.noteHeat(sh, attempts)
	// The ticket must be read before tryGrow: the growth transaction's
	// Begin clears it from the descriptor.
	t := s.ticket(tx)
	if grow {
		s.tryGrow(tx, sh)
	}
	s.waitDurable(t)
	return inserted
}

// tryGrow runs the freeze/rehash transaction as best-effort housekeeping:
// the caller's own operation has already committed, so a growth failure —
// the arena cannot fit a doubled directory — must not surface as an error
// for an operation that succeeded. The shard keeps serving with longer
// chains and the next insert retries. Any panic other than the shared
// exhaustion sentinel keeps propagating.
func (s *Store[T]) tryGrow(tx T, sh uint64) {
	defer func() {
		if r := recover(); r != nil && r != txn.ErrSpaceExhausted {
			panic(r)
		}
	}()
	s.sys.Atomic(tx, func(tx T) { s.m.Grow(tx, sh) })
}

// Delete removes key, reporting whether it was present.
func (s *Store[T]) Delete(key uint64) (found bool) {
	tx := s.pool.Get()
	defer s.pool.Put(tx)
	attempts := 0
	s.sys.Atomic(tx, func(tx T) {
		//stm:allow-effect heat-map retry counter: monotone, reported after commit, never read in-body
		attempts++
		found = s.m.Delete(tx, key)
		if found {
			s.redo(tx, txn.RedoDelete, key, 0)
		}
	})
	s.noteHeat(s.m.Shard(key), attempts)
	s.waitDurable(s.ticket(tx))
	return found
}

// CAS atomically replaces key's value with new iff it currently is old.
func (s *Store[T]) CAS(key, old, new uint64) (ok bool) {
	tx := s.pool.Get()
	defer s.pool.Put(tx)
	attempts := 0
	s.sys.Atomic(tx, func(tx T) {
		//stm:allow-effect heat-map retry counter: monotone, reported after commit, never read in-body
		attempts++
		ok = s.m.CAS(tx, key, old, new)
		if ok {
			s.redo(tx, txn.RedoPut, key, new)
		}
	})
	s.noteHeat(s.m.Shard(key), attempts)
	s.waitDurable(s.ticket(tx))
	return ok
}

// Add atomically adds delta to key's value (inserting at delta when
// absent) and returns the new value.
func (s *Store[T]) Add(key, delta uint64) (val uint64) {
	var grow bool
	tx := s.pool.Get()
	defer s.pool.Put(tx)
	sh := s.m.Shard(key)
	attempts := 0
	s.sys.Atomic(tx, func(tx T) {
		//stm:allow-effect heat-map retry counter: monotone, reported after commit, never read in-body
		attempts++
		val = s.m.Add(tx, key, delta)
		grow = s.m.NeedsGrow(tx, sh)
		s.redo(tx, txn.RedoPut, key, val)
	})
	s.noteHeat(sh, attempts)
	t := s.ticket(tx)
	if grow {
		s.tryGrow(tx, sh)
	}
	s.waitDurable(t)
	return val
}

// Len returns the live key count via a read-only transaction (snapshot
// mode when available: the per-shard counters span every stripe of the
// map's headers, exactly the scattered read set writers keep moving).
func (s *Store[T]) Len() (n uint64) {
	tx := s.pool.Get()
	defer s.pool.Put(tx)
	s.atomicRO(tx, func(tx T) { n = s.m.Len(tx) })
	return n
}

// KV is one key/value pair returned by Scan.
type KV struct {
	Key uint64 `json:"key"`
	Val uint64 `json:"val"`
}

// Scan iterates the whole table, returning up to limit pairs (all of
// them when limit <= 0) and the total number of live keys it walked.
//
// With snapshot mode available it runs as ONE snapshot transaction: a
// single commit-ordered point in time that concurrent writers cannot
// abort. Without it (TL2, or Snapshots off) a full-table read-only
// transaction under write pressure can retry unboundedly — the very
// starvation the sidecar exists to fix — so the fallback degrades to one
// read-only transaction PER SHARD: each shard is internally consistent
// and bounded, but the shards are not mutually consistent. The pair
// slices are rebuilt on retry, so a fresh attempt starts clean.
func (s *Store[T]) Scan(limit int) (pairs []KV, total uint64) {
	tx := s.pool.Get()
	defer s.pool.Put(tx)
	if s.snap != nil {
		s.snap.AtomicSnap(tx, func(tx T) {
			pairs = pairs[:0]
			total = 0
			s.m.Range(tx, func(k, v uint64) bool {
				total++
				if limit <= 0 || len(pairs) < limit {
					pairs = append(pairs, KV{Key: k, Val: v})
				}
				return true
			})
		})
		return pairs, total
	}
	for sh := uint64(0); sh < s.m.Shards(); sh++ {
		var shardPairs []KV
		var shardTotal uint64
		s.sys.AtomicRO(tx, func(tx T) {
			shardPairs = shardPairs[:0]
			shardTotal = 0
			s.m.RangeShard(tx, sh, func(k, v uint64) bool {
				shardTotal++
				if limit <= 0 || len(pairs)+len(shardPairs) < limit {
					shardPairs = append(shardPairs, KV{Key: k, Val: v})
				}
				return true
			})
		})
		pairs = append(pairs, shardPairs...)
		total += shardTotal
	}
	return pairs, total
}

// Apply executes ops as ONE atomic transaction: either every operation's
// effect commits or none does, and all Gets observe one consistent
// snapshot. Results are positionally aligned with ops. A batch that only
// reads runs read-only.
func (s *Store[T]) Apply(ops []Op) []OpResult {
	res := make([]OpResult, len(ops))
	readOnly := true
	for _, op := range ops {
		if op.Kind != OpGet {
			readOnly = false
			break
		}
	}
	tx := s.pool.Get()
	defer s.pool.Put(tx)
	body := func(tx T) {
		for i, op := range ops {
			res[i] = OpResult{}
			switch op.Kind {
			case OpGet:
				res[i].Val, res[i].Found = s.m.Get(tx, op.Key)
			case OpPut:
				res[i].OK = s.m.Put(tx, op.Key, op.Val)
				res[i].Found = !res[i].OK
				s.redo(tx, txn.RedoPut, op.Key, op.Val)
			case OpDelete:
				res[i].Found = s.m.Delete(tx, op.Key)
				if res[i].Found {
					s.redo(tx, txn.RedoDelete, op.Key, 0)
				}
			case OpCAS:
				res[i].OK = s.m.CAS(tx, op.Key, op.Old, op.Val)
				if res[i].OK {
					s.redo(tx, txn.RedoPut, op.Key, op.Val)
				}
			case OpAdd:
				res[i].Val = s.m.Add(tx, op.Key, op.Val)
				res[i].OK = true
				s.redo(tx, txn.RedoPut, op.Key, res[i].Val)
			default:
				panic(fmt.Sprintf("kvstore: unknown batch op %d", int(op.Kind)))
			}
		}
	}
	if readOnly {
		// All-Get batches take the snapshot fast path when the system
		// offers it: one consistent timestamp, no validation, no aborts
		// from concurrent writers. The body is shared with the update
		// path, so it statically reaches the mutators and redo capture,
		// but the all-Get guard above makes those arms unreachable here.
		//stm:allow-write every op is OpGet on this path; the write arms cannot execute
		//stm:allow-redo every op is OpGet on this path; the redo arms cannot execute
		s.atomicRO(tx, body)
		return res
	}
	s.sys.Atomic(tx, body)
	t := s.ticket(tx)
	s.growTouched(tx, ops)
	s.waitDurable(t)
	return res
}

// growTouched runs the freeze/rehash transaction for every shard a batch's
// inserts pushed past the load factor.
func (s *Store[T]) growTouched(tx T, ops []Op) {
	seen := make(map[uint64]bool, 4)
	for _, op := range ops {
		if op.Kind != OpPut && op.Kind != OpAdd {
			continue
		}
		sh := s.m.Shard(op.Key)
		if seen[sh] {
			continue
		}
		seen[sh] = true
		var grow bool
		s.sys.AtomicRO(tx, func(tx T) { grow = s.m.NeedsGrow(tx, sh) })
		if grow {
			s.tryGrow(tx, sh)
		}
	}
}
