package kvstore

import (
	"sync"

	"tinystm/internal/txn"
)

// TxPool recycles transaction descriptors across short-lived borrowers —
// HTTP handler goroutines, connection handlers — that cannot hold a
// descriptor for their (unbounded) lifetime the way benchmark workers do.
// Descriptors are goroutine-affine only while inside a transaction, so
// borrowing one per request is safe; what is NOT safe is minting one per
// request and dropping it, which leaks a TM slot each time (the PR 2
// slot-exhaustion failure mode, now on the server path). The pool bounds
// minting at the peak concurrency ever observed, and Close releases every
// pooled descriptor back to the TM.
//
// A sync.Pool cannot do this job: it drops entries on GC without calling
// Release, and a dropped descriptor's slot is retained by the TM forever.
type TxPool[T txn.Tx] struct {
	sys txn.System[T]

	//stm:allow-atomic guards the descriptor free-list; descriptors live outside transactions
	mu     sync.Mutex
	free   []T
	closed bool
}

// NewTxPool builds an empty pool over sys.
func NewTxPool[T txn.Tx](sys txn.System[T]) *TxPool[T] {
	return &TxPool[T]{sys: sys}
}

// Get borrows a descriptor, minting a fresh one only when the pool is
// empty. Callers must hand it back with Put on every path.
func (p *TxPool[T]) Get() T {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		tx := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return tx
	}
	p.mu.Unlock()
	return p.sys.NewTx()
}

// Put returns a borrowed descriptor. After Close, the descriptor is
// released to the TM instead of pooled (late borrowers during shutdown
// must not resurrect the pool).
func (p *TxPool[T]) Put(tx T) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		release(tx)
		return
	}
	p.free = append(p.free, tx)
	p.mu.Unlock()
}

// Close releases every pooled descriptor back to the TM. Descriptors still
// borrowed are released as they are Put back.
func (p *TxPool[T]) Close() {
	p.mu.Lock()
	free := p.free
	p.free = nil
	p.closed = true
	p.mu.Unlock()
	for _, tx := range free {
		release(tx)
	}
}

// Idle reports how many descriptors currently sit in the pool (tests).
func (p *TxPool[T]) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
