// Package kvstore implements a sharded, transactional, in-memory
// key-value map whose every word — bucket directories, hash nodes, counts
// — lives in STM-managed memory. It is the repository's first
// service-shaped workload: where the intset structures reproduce the
// paper's microbenchmarks, the kvstore backs an actual server
// (cmd/stmkvd) whose traffic the online tuning runtime adapts to.
//
// Layout inside the mem.Space (all accesses go through txn.Tx, so every
// operation is a real STM transaction):
//
//	shard header (one per shard, padded to 8 words):
//	    +0  dir      address of the bucket directory
//	    +1  nbuckets directory length (power of two)
//	    +2  count    live keys in the shard
//	bucket directory: nbuckets words, each the head of a node chain (0 = empty)
//	node: 3 words [key, value, next]
//
// A key hashes once; the low bits pick the shard, the high bits the bucket
// within the shard's directory, so growing one shard never moves keys
// across shards. Growing is a single freeze/rehash transaction over the
// shard (Map.Grow): it allocates a doubled directory, relinks every node,
// frees the old directory and swaps the header — concurrent operations on
// that shard conflict with it and simply retry, which is the transactional
// equivalent of a per-shard freeze.
package kvstore

import (
	"fmt"
	"math/bits"

	"tinystm/internal/txn"
)

const (
	hdrWords  = 8 // shard header stride (padded: shards land on distinct stripes)
	hdrDir    = 0
	hdrNBkts  = 1
	hdrCount  = 2
	nodeWords = 3 // [key, value, next]

	// loadFactor is the mean chain length at which NeedsGrow triggers.
	loadFactor = 4
	// maxBucketsPerShard caps directory doubling so a pathological
	// workload cannot ask the arena for unbounded directories.
	maxBucketsPerShard = 1 << 20
)

// Map is a transactional hash map from uint64 keys to uint64 values. The
// Go-side struct holds only immutable placement data (base address, shard
// count); all mutable state lives in the Space, so any number of
// goroutines may use a Map concurrently, each through its own descriptor.
//
// All methods take the caller's transaction and perform plain
// transactional loads/stores: they compose freely into larger atomic
// blocks (multi-key batches, read-modify-write, cross-map transfers).
type Map[T txn.Tx] struct {
	base      uint64
	shards    uint64
	shardBits uint
}

// New allocates and initializes a Map with the given shard count and
// per-shard initial bucket count (both powers of two) inside one
// transaction of sys.
func New[T txn.Tx](sys txn.System[T], shards, buckets uint64) *Map[T] {
	if shards == 0 || bits.OnesCount64(shards) != 1 {
		panic(fmt.Sprintf("kvstore: shards (%d) must be a power of two", shards))
	}
	if buckets == 0 || bits.OnesCount64(buckets) != 1 || buckets > maxBucketsPerShard {
		panic(fmt.Sprintf("kvstore: buckets (%d) must be a power of two <= %d", buckets, maxBucketsPerShard))
	}
	m := &Map[T]{shards: shards, shardBits: uint(bits.TrailingZeros64(shards))}
	tx := sys.NewTx()
	defer release(tx)
	sys.Atomic(tx, func(tx T) {
		m.base = tx.Alloc(int(shards) * hdrWords)
		for s := uint64(0); s < shards; s++ {
			dir := tx.Alloc(int(buckets))
			hdr := m.base + s*hdrWords
			tx.Store(hdr+hdrDir, dir)
			tx.Store(hdr+hdrNBkts, buckets)
			tx.Store(hdr+hdrCount, 0)
		}
	})
	return m
}

// release hands a descriptor back when the system supports recycling.
func release(tx any) {
	if r, ok := tx.(interface{ Release() }); ok {
		r.Release()
	}
}

// Shards returns the (static) shard count.
func (m *Map[T]) Shards() uint64 { return m.shards }

// hash is the SplitMix64 finalizer: a full-avalanche mix so dense integer
// keys (the load generator's Zipf ranks) spread over shards and buckets.
func hash(key uint64) uint64 {
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Shard returns the shard index key maps to.
func (m *Map[T]) Shard(key uint64) uint64 { return hash(key) & (m.shards - 1) }

// bucket returns the address of the bucket-head word covering key, reading
// the shard's directory transactionally.
func (m *Map[T]) bucket(tx T, key uint64) uint64 {
	h := hash(key)
	hdr := m.base + (h&(m.shards-1))*hdrWords
	dir := tx.Load(hdr + hdrDir)
	nb := tx.Load(hdr + hdrNBkts)
	return dir + ((h >> m.shardBits) & (nb - 1))
}

// lookup walks the chain at key's bucket. It returns the node address and
// the address of the link pointing at it (the bucket head word or a
// predecessor's next word); node is 0 when the key is absent.
func (m *Map[T]) lookup(tx T, key uint64) (node, link uint64) {
	link = m.bucket(tx, key)
	for {
		node = tx.Load(link)
		if node == 0 {
			return 0, link
		}
		if tx.Load(node) == key {
			return node, link
		}
		link = node + 2
	}
}

// Get returns the value stored under key within the caller's transaction.
func (m *Map[T]) Get(tx T, key uint64) (uint64, bool) {
	node, _ := m.lookup(tx, key)
	if node == 0 {
		return 0, false
	}
	return tx.Load(node + 1), true
}

// Contains reports whether key is present.
func (m *Map[T]) Contains(tx T, key uint64) bool {
	node, _ := m.lookup(tx, key)
	return node != 0
}

// Put inserts or updates key. It reports whether the key was inserted
// (false: an existing value was overwritten).
func (m *Map[T]) Put(tx T, key, val uint64) bool {
	node, link := m.lookup(tx, key)
	if node != 0 {
		tx.Store(node+1, val)
		return false
	}
	n := tx.Alloc(nodeWords)
	tx.Store(n, key)
	tx.Store(n+1, val)
	tx.Store(n+2, 0) // chain tail: lookup stopped at an empty link
	tx.Store(link, n)
	m.addCount(tx, key, 1)
	return true
}

// Delete removes key, reporting whether it was present.
func (m *Map[T]) Delete(tx T, key uint64) bool {
	node, link := m.lookup(tx, key)
	if node == 0 {
		return false
	}
	tx.Store(link, tx.Load(node+2))
	tx.Free(node, nodeWords)
	m.addCount(tx, key, ^uint64(0))
	return true
}

// CAS replaces key's value with new iff the key is present with value old.
func (m *Map[T]) CAS(tx T, key, old, new uint64) bool {
	node, _ := m.lookup(tx, key)
	if node == 0 || tx.Load(node+1) != old {
		return false
	}
	tx.Store(node+1, new)
	return true
}

// Add increments key's value by delta (two's-complement, so negative
// deltas are ^uint64 wraps), inserting the key at delta when absent. It
// returns the new value. This is the read-modify-write primitive batches
// need (a Get+Put pair in one batch could not see its own intermediate).
func (m *Map[T]) Add(tx T, key, delta uint64) uint64 {
	node, link := m.lookup(tx, key)
	if node != 0 {
		v := tx.Load(node+1) + delta
		tx.Store(node+1, v)
		return v
	}
	n := tx.Alloc(nodeWords)
	tx.Store(n, key)
	tx.Store(n+1, delta)
	tx.Store(n+2, 0)
	tx.Store(link, n)
	m.addCount(tx, key, 1)
	return delta
}

// addCount adjusts the owning shard's live-key counter.
func (m *Map[T]) addCount(tx T, key uint64, delta uint64) {
	c := m.base + m.Shard(key)*hdrWords + hdrCount
	tx.Store(c, tx.Load(c)+delta)
}

// Range calls fn for every key/value pair within the caller's
// transaction, stopping early when fn returns false. Iteration order is
// shard, then bucket, then chain position — stable only within one
// transaction. Composed with a snapshot-mode transaction this is the
// wait-free full-table scan; inside an update transaction it reads (and
// therefore validates) every word of the map.
func (m *Map[T]) Range(tx T, fn func(key, val uint64) bool) {
	for s := uint64(0); s < m.shards; s++ {
		if !m.RangeShard(tx, s, fn) {
			return
		}
	}
}

// RangeShard calls fn for every key/value pair of shard s, reporting
// false when fn stopped the iteration early.
func (m *Map[T]) RangeShard(tx T, s uint64, fn func(key, val uint64) bool) bool {
	hdr := m.base + s*hdrWords
	dir := tx.Load(hdr + hdrDir)
	nb := tx.Load(hdr + hdrNBkts)
	for b := uint64(0); b < nb; b++ {
		node := tx.Load(dir + b)
		for node != 0 {
			if !fn(tx.Load(node), tx.Load(node+1)) {
				return false
			}
			node = tx.Load(node + 2)
		}
	}
	return true
}

// Len sums the per-shard counters within the caller's transaction.
func (m *Map[T]) Len(tx T) uint64 {
	var n uint64
	for s := uint64(0); s < m.shards; s++ {
		n += tx.Load(m.base + s*hdrWords + hdrCount)
	}
	return n
}

// ShardLoad returns shard s's live-key count and bucket count.
func (m *Map[T]) ShardLoad(tx T, s uint64) (count, buckets uint64) {
	hdr := m.base + s*hdrWords
	return tx.Load(hdr + hdrCount), tx.Load(hdr + hdrNBkts)
}

// NeedsGrow reports whether shard s's mean chain length exceeds the load
// factor and the directory can still double.
func (m *Map[T]) NeedsGrow(tx T, s uint64) bool {
	count, buckets := m.ShardLoad(tx, s)
	return buckets < maxBucketsPerShard && count > buckets*loadFactor
}

// Grow doubles shard s's bucket directory and rehashes its chains: the
// freeze/rehash transaction. Within one atomic block it allocates the new
// directory, relinks every node (no node is copied — only next pointers
// and bucket heads change), frees the old directory and swaps the header.
// The transaction reads and writes the entire shard, so every concurrent
// operation on the shard conflicts with it and retries after it commits —
// a per-shard world-freeze enforced by the STM rather than a global
// barrier. Returns false if the shard no longer needs growing (a
// concurrent Grow got there first).
func (m *Map[T]) Grow(tx T, s uint64) bool {
	if !m.NeedsGrow(tx, s) {
		return false
	}
	hdr := m.base + s*hdrWords
	dir := tx.Load(hdr + hdrDir)
	nb := tx.Load(hdr + hdrNBkts)
	nb2 := nb * 2
	dir2 := tx.Alloc(int(nb2))
	for b := uint64(0); b < nb; b++ {
		node := tx.Load(dir + b)
		for node != 0 {
			next := tx.Load(node + 2)
			h := hash(tx.Load(node))
			head := dir2 + ((h >> m.shardBits) & (nb2 - 1))
			tx.Store(node+2, tx.Load(head))
			tx.Store(head, node)
			node = next
		}
	}
	tx.Free(dir, int(nb))
	tx.Store(hdr+hdrDir, dir2)
	tx.Store(hdr+hdrNBkts, nb2)
	return true
}
