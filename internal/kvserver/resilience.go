// The server half of the resilience stack: end-to-end deadline
// enforcement and brownout load shedding, shared by both request
// surfaces.
//
// Deadlines travel as RELATIVE budgets (the X-Timeout-Ms header on HTTP,
// the flagged TimeoutMs field on the wire protocol) and are re-anchored
// to an absolute deadline the moment the server reads the request —
// clock-skew immune by construction. From there the budget is checked at
// every stage where the request can grow stale while costing nothing:
// before execution (proto dequeue — the op sat in the connection's
// pipeline), at the admission gate (EnterUntil sheds instead of queueing
// a corpse), and before long operations start. A shed is answered 504 on
// HTTP and StatusDeadlineExceeded on the wire, and counted per
// surface+stage so /metrics can prove WHERE requests die under overload.
//
// The brownout ladder (resilience.Brownout, stepped by the tuning
// runtime from the request-latency histogram's per-period p99) sheds
// whole request classes in cost order — scans first, then writes, reads
// last — at the door, before any transaction or gate wait. Shed
// responses are 503 + Retry-After, the same shape as the lifecycle
// gate's refusals, so clients' existing retry classification applies.
package kvserver

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"

	"tinystm/internal/kvproto"
	"tinystm/internal/resilience"
)

// Deadline-shed stages: where a request's budget ran out.
const (
	// shedStageDequeue: expired between arrival and execution (the proto
	// pipeline queue; HTTP has no equivalent queue the server can see).
	shedStageDequeue = iota
	// shedStageGate: expired waiting at (or arriving expired to) the
	// update-admission gate.
	shedStageGate
	// shedStageOp: expired immediately before a long operation (scan,
	// batch) would have started.
	shedStageOp
	nShedStages
)

var shedStageNames = [nShedStages]string{"dequeue", "gate", "op"}

// shedStats counts deadline and brownout sheds for /metrics and /stats.
type shedStats struct {
	//stm:allow-atomic request accounting outside any transaction
	deadline [nSurfaces][nShedStages]atomic.Uint64
	//stm:allow-atomic request accounting outside any transaction
	brownout [resilience.NumClasses]atomic.Uint64
}

// deadlineKey carries a request's absolute deadline in its context.
type deadlineKey struct{}

// httpDeadline parses the X-Timeout-Ms header into an absolute deadline
// (zero: none). The error is a client error (400).
func httpDeadline(r *http.Request) (time.Time, error) {
	d, err := resilience.ParseTimeout(r.Header.Get(resilience.TimeoutHeader))
	if err != nil || d == 0 {
		return time.Time{}, err
	}
	return time.Now().Add(d), nil
}

// withDeadline stashes a non-zero deadline on the request context.
func withDeadline(r *http.Request, dl time.Time) *http.Request {
	if dl.IsZero() {
		return r
	}
	return r.WithContext(context.WithValue(r.Context(), deadlineKey{}, dl))
}

// deadlineOf recovers the request's absolute deadline (zero: none).
func deadlineOf(r *http.Request) time.Time {
	dl, _ := r.Context().Value(deadlineKey{}).(time.Time)
	return dl
}

// expired reports whether a non-zero deadline has passed.
func expired(dl time.Time) bool {
	return !dl.IsZero() && !time.Now().Before(dl)
}

// shedDeadlineHTTP counts one HTTP deadline shed and answers 504: the
// client's budget for this request is spent, so the answer documents
// that the server refused the work rather than timing out silently.
func (s *Server) shedDeadlineHTTP(w http.ResponseWriter, stage int) {
	s.shed.deadline[surfHTTP][stage].Add(1)
	http.Error(w, "deadline exceeded before execution ("+shedStageNames[stage]+")", http.StatusGatewayTimeout)
}

// enterUpdateUntil is enterUpdate with the request's deadline applied at
// the gate: it claims an update slot or reports that the budget ran out
// first (the caller then sheds). A zero deadline never sheds.
func (s *Server) enterUpdateUntil(dl time.Time) (release func(), ok bool) {
	if s.gate == nil {
		if expired(dl) {
			return nil, false
		}
		return func() {}, true
	}
	t0 := time.Now()
	if !s.gate.EnterUntil(dl) {
		return nil, false
	}
	s.met.admWaitNs.Record(uint64(time.Since(t0)))
	return s.gate.Exit, true
}

// classifyHTTP maps a data request onto a brownout class: /scan is the
// expensive full-table walk, other GETs are reads, everything else —
// including POST /batch, whose cost is write-like even when its ops are
// all Gets — mutates.
func classifyHTTP(r *http.Request) resilience.Class {
	if r.URL.Path == "/scan" {
		return resilience.ClassScan
	}
	if r.Method == http.MethodGet {
		return resilience.ClassRead
	}
	return resilience.ClassWrite
}

// classifyProtoOp maps a wire op onto a brownout class (same ladder as
// HTTP; Batch counts as a write for the same reason POST /batch does).
func classifyProtoOp(op kvproto.Op) resilience.Class {
	switch op {
	case kvproto.OpGet:
		return resilience.ClassRead
	case kvproto.OpScan:
		return resilience.ClassScan
	default:
		return resilience.ClassWrite
	}
}

// brownSheds reports whether the current brownout level sheds class c,
// counting the shed when it does.
func (s *Server) brownSheds(c resilience.Class) bool {
	if s.brown == nil || !s.brown.Sheds(c) {
		return false
	}
	s.shed.brownout[c].Add(1)
	return true
}

// brownoutMsg is the shed response body/message; it names the class so
// a client log line is actionable without scraping /stats.
func brownoutMsg(c resilience.Class) string {
	return "brownout: shedding " + c.String() + " requests (p99 over SLO); retry later"
}

// deadlineShedStats renders the per-surface/stage shed counters.
func (s *Server) deadlineShedStats() map[string]any {
	out := make(map[string]any, nSurfaces)
	for surf := 0; surf < nSurfaces; surf++ {
		stages := make(map[string]uint64, nShedStages)
		for st := 0; st < nShedStages; st++ {
			stages[shedStageNames[st]] = s.shed.deadline[surf][st].Load()
		}
		out[surfaceNames[surf]] = stages
	}
	return out
}

// brownoutLevelName is the live level for /tuning ("off" without a
// ladder: the server is never shedding).
func (s *Server) brownoutLevelName() string {
	if s.brown == nil {
		return resilience.LevelOff.String()
	}
	return s.brown.Level().String()
}

// brownoutStats renders the ladder for /stats.
func (s *Server) brownoutStats() map[string]any {
	if s.brown == nil {
		return map[string]any{"enabled": false}
	}
	esc, deesc := s.brown.Moves()
	shed := make(map[string]uint64, resilience.NumClasses)
	for c := 0; c < resilience.NumClasses; c++ {
		shed[resilience.Class(c).String()] = s.shed.brownout[c].Load()
	}
	return map[string]any{
		"enabled":       true,
		"slo_ms":        s.brown.SLO().Milliseconds(),
		"level":         s.brown.Level().String(),
		"escalations":   esc,
		"deescalations": deesc,
		"shed":          shed,
	}
}
