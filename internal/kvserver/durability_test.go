package kvserver

import (
	"fmt"
	"net/http"
	"testing"

	"tinystm/internal/wal"
)

// durableCfg is the shared base config for durability tests: small arena,
// group acks, in-memory filesystem so "restart" and "crash" are cheap.
func durableCfg(fs *wal.MemFS) Config {
	return Config{
		SpaceWords: 1 << 18, Shards: 4, Buckets: 8,
		Snapshots:  true,
		Durability: DurabilityGroup,
		WALDir:     "wal",
		WALFS:      fs,
	}
}

func waitReady(t *testing.T, s *Server) {
	t.Helper()
	if err := s.RecoveryWait(); err != nil {
		t.Fatalf("RecoveryWait: %v", err)
	}
}

// TestRestartRecoversAckedWrites is the headline property over the HTTP
// surface: everything a durable server acked is served again by the next
// incarnation booted from the same (crashed) filesystem.
func TestRestartRecoversAckedWrites(t *testing.T) {
	fs := wal.NewMemFS()

	s1, ts1 := newTestServer(t, durableCfg(fs))
	waitReady(t, s1)
	c := ts1.Client()
	for k := 0; k < 50; k++ {
		if code := doJSON(t, c, "PUT", fmt.Sprintf("%s/kv/%d", ts1.URL, k), fmt.Sprint(k*10), nil); code != 200 {
			t.Fatalf("PUT %d: status %d", k, code)
		}
	}
	if code := doJSON(t, c, "DELETE", ts1.URL+"/kv/7", "", nil); code != 200 {
		t.Fatal("DELETE failed")
	}
	ts1.Close()
	s1.Close()

	// Kill -9: every unsynced byte vanishes. Acked responses must not.
	fs.Crash(0)

	s2, ts2 := newTestServer(t, durableCfg(fs))
	waitReady(t, s2)
	c2 := ts2.Client()
	for k := 0; k < 50; k++ {
		var got struct{ Val uint64 }
		code := doJSON(t, c2, "GET", fmt.Sprintf("%s/kv/%d", ts2.URL, k), "", &got)
		if k == 7 {
			if code != http.StatusNotFound {
				t.Fatalf("deleted key 7 came back: status %d", code)
			}
			continue
		}
		if code != 200 || got.Val != uint64(k*10) {
			t.Fatalf("GET %d after restart: status %d val %d", k, code, got.Val)
		}
	}

	// /stats must tell the recovery story.
	var st struct {
		Durability struct {
			Mode     string `json:"mode"`
			State    string `json:"state"`
			Recovery struct {
				Records uint64 `json:"records"`
			} `json:"recovery"`
		} `json:"durability"`
	}
	if code := doJSON(t, c2, "GET", ts2.URL+"/stats", "", &st); code != 200 {
		t.Fatalf("/stats: %d", code)
	}
	if st.Durability.Mode != DurabilityGroup || st.Durability.State != "ready" {
		t.Fatalf("durability stats = %+v", st.Durability)
	}
	if st.Durability.Recovery.Records == 0 {
		t.Fatal("recovery replayed zero records")
	}
}

// TestReadinessDuringRecovery pins the liveness/readiness split: while the
// WAL replays, /healthz says the process is alive, /readyz and data
// endpoints say come back later (503 + Retry-After), and /stats answers so
// an operator can watch.
func TestReadinessDuringRecovery(t *testing.T) {
	fs := wal.NewMemFS()
	gate := make(chan struct{})
	cfg := durableCfg(fs)
	cfg.recoveryGate = gate

	s, ts := newTestServer(t, cfg)
	c := ts.Client()

	if code := doJSON(t, c, "GET", ts.URL+"/healthz", "", nil); code != 200 {
		t.Fatalf("/healthz during recovery: %d", code)
	}
	resp, err := c.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during recovery: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("/readyz 503 without Retry-After")
	}
	if code := doJSON(t, c, "PUT", ts.URL+"/kv/1", "1", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("PUT during recovery: %d, want 503", code)
	}
	if code := doJSON(t, c, "GET", ts.URL+"/stats", "", nil); code != 200 {
		t.Fatalf("/stats during recovery: %d", code)
	}

	close(gate)
	waitReady(t, s)
	if code := doJSON(t, c, "GET", ts.URL+"/readyz", "", nil); code != 200 {
		t.Fatalf("/readyz after recovery: %d", code)
	}
	if code := doJSON(t, c, "PUT", ts.URL+"/kv/1", "1", nil); code != 200 {
		t.Fatalf("PUT after recovery: %d", code)
	}
}

// TestFsyncFailureDegradesToReadOnly: a log that can no longer promise
// durability must stop acking writes — stickily — while committed memory
// keeps serving reads.
func TestFsyncFailureDegradesToReadOnly(t *testing.T) {
	fs := wal.NewMemFS()
	s, ts := newTestServer(t, durableCfg(fs))
	waitReady(t, s)
	c := ts.Client()

	if code := doJSON(t, c, "PUT", ts.URL+"/kv/1", "11", nil); code != 200 {
		t.Fatalf("PUT before failure: %d", code)
	}

	fs.FailSyncAt(1) // next fsync errors, and the log failure is sticky
	if code := doJSON(t, c, "PUT", ts.URL+"/kv/2", "22", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("PUT with broken fsync: %d, want 503", code)
	}
	if st := s.State(); st != "degraded" {
		t.Fatalf("state = %q, want degraded", st)
	}
	// Sticky: later writes stay refused even though the injected failure
	// counter has passed.
	if code := doJSON(t, c, "PUT", ts.URL+"/kv/3", "33", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("PUT after degrade: %d, want 503", code)
	}
	// Reads of committed state keep working.
	var got struct{ Val uint64 }
	if code := doJSON(t, c, "GET", ts.URL+"/kv/1", "", &got); code != 200 || got.Val != 11 {
		t.Fatalf("GET while degraded: status %d val %d", code, got.Val)
	}
	resp, err := c.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while degraded: %d, want 503", resp.StatusCode)
	}
	var st struct {
		Durability struct {
			DegradedError string `json:"degraded_error"`
		} `json:"durability"`
	}
	doJSON(t, c, "GET", ts.URL+"/stats", "", &st)
	if st.Durability.DegradedError == "" {
		t.Fatal("/stats does not surface the degraded cause")
	}
}

// TestRecoveryCorruptionFailsLoudly: mid-log damage must park the server
// in stateFailed with the cause visible, never serve partial state.
func TestRecoveryCorruptionFailsLoudly(t *testing.T) {
	fs := wal.NewMemFS()

	// First incarnation writes real data.
	s1, ts1 := newTestServer(t, durableCfg(fs))
	waitReady(t, s1)
	if code := doJSON(t, ts1.Client(), "PUT", ts1.URL+"/kv/1", "1", nil); code != 200 {
		t.Fatal("seed PUT failed")
	}
	ts1.Close()
	s1.Close()

	// Vandalize a segment header: fully-present bad bytes are corruption,
	// not a torn tail.
	names, err := fs.ReadDir("wal")
	if err != nil {
		t.Fatal(err)
	}
	seg := ""
	for _, n := range names {
		if len(n) > 4 && n[:4] == "wal-" {
			seg = n
			break
		}
	}
	if seg == "" {
		t.Fatal("no segment on disk")
	}
	data, _ := fs.ReadFile("wal/" + seg)
	data[0] ^= 0xFF
	f, _ := fs.Create("wal/" + seg)
	f.Write(data)
	f.Sync()
	f.Close()

	s2, err := New(durableCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.RecoveryWait(); err == nil {
		t.Fatal("recovery over corrupt log succeeded")
	}
	if st := s2.State(); st != "failed" {
		t.Fatalf("state = %q, want failed", st)
	}
}

// TestCheckpointTruncatesAndRestartUsesIt exercises the server-level
// checkpoint protocol end to end: Checkpoint() writes a snapshot, drops
// the sealed segments, and the NEXT boot recovers from the checkpoint.
func TestCheckpointTruncatesAndRestartUsesIt(t *testing.T) {
	fs := wal.NewMemFS()
	s1, ts1 := newTestServer(t, durableCfg(fs))
	waitReady(t, s1)
	c := ts1.Client()
	for k := 0; k < 20; k++ {
		if code := doJSON(t, c, "PUT", fmt.Sprintf("%s/kv/%d", ts1.URL, k), fmt.Sprint(k+1), nil); code != 200 {
			t.Fatalf("PUT %d failed", k)
		}
	}
	if err := s1.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// More writes after the checkpoint land in the surviving log suffix.
	if code := doJSON(t, c, "PUT", ts1.URL+"/kv/100", "1000", nil); code != 200 {
		t.Fatal("post-checkpoint PUT failed")
	}
	ts1.Close()
	s1.Close()
	fs.Crash(0)

	s2, ts2 := newTestServer(t, durableCfg(fs))
	waitReady(t, s2)
	var st struct {
		Durability struct {
			Recovery struct {
				CheckpointFound bool   `json:"checkpoint_found"`
				CheckpointPairs uint64 `json:"checkpoint_pairs"`
			} `json:"recovery"`
		} `json:"durability"`
	}
	c2 := ts2.Client()
	if code := doJSON(t, c2, "GET", ts2.URL+"/stats", "", &st); code != 200 {
		t.Fatal("/stats failed")
	}
	if !st.Durability.Recovery.CheckpointFound || st.Durability.Recovery.CheckpointPairs == 0 {
		t.Fatalf("restart did not recover from the checkpoint: %+v", st.Durability.Recovery)
	}
	var got struct{ Val uint64 }
	if code := doJSON(t, c2, "GET", ts2.URL+"/kv/5", "", &got); code != 200 || got.Val != 6 {
		t.Fatalf("checkpointed key: status %d val %d", code, got.Val)
	}
	if code := doJSON(t, c2, "GET", ts2.URL+"/kv/100", "", &got); code != 200 || got.Val != 1000 {
		t.Fatalf("post-checkpoint key: status %d val %d", code, got.Val)
	}
}
