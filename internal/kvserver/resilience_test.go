package kvserver

import (
	"encoding/binary"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tinystm/internal/kvclient"
	"tinystm/internal/kvproto"
	"tinystm/internal/resilience"
)

// escalate pushes a ladder up n rungs with over-SLO evidence.
func escalate(b *resilience.Brownout, n int) {
	for i := 0; i < n; i++ {
		b.Step(time.Hour, 1<<20)
	}
}

// testBrownout is a ladder that escalates on a single hot period and
// never walks back on its own during a test.
func testBrownout() *resilience.Brownout {
	return resilience.NewBrownout(resilience.BrownoutConfig{
		SLO: time.Millisecond, EscalateAfter: 1, CalmAfter: 1 << 30, MinSamples: 1,
	})
}

func TestHTTPBadTimeoutHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{SpaceWords: 1 << 16})
	c := ts.Client()
	for _, bad := range []string{"bogus", "-5", "1.5", "999999999999"} {
		req, err := http.NewRequest("GET", ts.URL+"/kv/1", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(resilience.TimeoutHeader, bad)
		resp, err := c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s=%q answered %d, want 400", resilience.TimeoutHeader, bad, resp.StatusCode)
		}
	}
	// A valid budget on a fast request changes nothing.
	req, _ := http.NewRequest("PUT", ts.URL+"/kv/1", strings.NewReader("7"))
	req.Header.Set(resilience.TimeoutHeader, "5000")
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline-bearing PUT answered %d", resp.StatusCode)
	}
}

// TestHTTPDeadlineShedAtGate holds the admission gate and checks a
// deadline-bearing update is refused 504 instead of queueing forever —
// the acceptance property that an expired request never reaches a
// worker.
func TestHTTPDeadlineShedAtGate(t *testing.T) {
	s, ts := newTestServer(t, Config{SpaceWords: 1 << 16, AdmissionWidth: 1})
	c := ts.Client()

	s.gate.Enter() // occupy the only slot
	req, _ := http.NewRequest("PUT", ts.URL+"/kv/9", strings.NewReader("1"))
	req.Header.Set(resilience.TimeoutHeader, "60")
	t0 := time.Now()
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("held gate answered %d, want 504", resp.StatusCode)
	}
	if waited := time.Since(t0); waited > 5*time.Second {
		t.Fatalf("shed took %v; the gate queued a corpse", waited)
	}
	if got := s.shed.deadline[surfHTTP][shedStageGate].Load(); got != 1 {
		t.Fatalf("gate-stage shed counter = %d, want 1", got)
	}
	if s.gate.Expired() == 0 {
		t.Fatal("gate did not count the expired claim")
	}
	s.gate.Exit()

	// The gate is healthy afterwards: the same request sails through.
	req, _ = http.NewRequest("PUT", ts.URL+"/kv/9", strings.NewReader("1"))
	req.Header.Set(resilience.TimeoutHeader, "60")
	resp, err = c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release PUT answered %d", resp.StatusCode)
	}

	_, val := scrape(t, c, ts.URL)
	if v, ok := val(`stmkvd_deadline_shed_total{stage="gate",surface="http"}`); !ok || v != 1 {
		t.Fatalf("metrics gate shed = (%v, %v), want 1", v, ok)
	}
	if v, ok := val("stmkvd_admission_expired_total"); !ok || v < 1 {
		t.Fatalf("metrics admission expired = (%v, %v)", v, ok)
	}
}

// TestHTTPDeadlineShedAtOp drives the op-stage checks directly with an
// already-expired deadline: scans and batches must refuse to start.
func TestHTTPDeadlineShedAtOp(t *testing.T) {
	s, _ := newTestServer(t, Config{SpaceWords: 1 << 16})
	past := time.Now().Add(-time.Millisecond)

	r := withDeadline(httptest.NewRequest("GET", "/scan", nil), past)
	w := httptest.NewRecorder()
	s.handleScan(w, r)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired scan answered %d, want 504", w.Code)
	}

	r = withDeadline(httptest.NewRequest("POST", "/batch",
		strings.NewReader(`{"ops":[{"op":"get","key":1}]}`)), past)
	w = httptest.NewRecorder()
	s.handleBatch(w, r)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired batch answered %d, want 504", w.Code)
	}
	if got := s.shed.deadline[surfHTTP][shedStageOp].Load(); got != 2 {
		t.Fatalf("op-stage shed counter = %d, want 2", got)
	}
}

// TestHTTPBrownoutLadder walks the ladder through every rung and checks
// each class is shed exactly when its rung says so, with 503+Retry-After
// — satellite (b)'s contract — on every refusal.
func TestHTTPBrownoutLadder(t *testing.T) {
	s, err := New(Config{SpaceWords: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	s.brown = testBrownout() // installed before the listener exists
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	c := ts.Client()

	status := func(method, path, body string) (int, http.Header) {
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode, resp.Header
	}

	if code, _ := status("PUT", "/kv/1", "5"); code != 200 {
		t.Fatalf("seed PUT: %d", code)
	}

	// shed-scans: scans die, reads and writes live.
	escalate(s.brown, 1)
	code, hdr := status("GET", "/scan", "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("scan under shed-scans: %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("brownout 503 missing Retry-After")
	}
	if code, _ := status("GET", "/kv/1", ""); code != 200 {
		t.Fatalf("read under shed-scans: %d", code)
	}
	if code, _ := status("PUT", "/kv/1", "6"); code != 200 {
		t.Fatalf("write under shed-scans: %d", code)
	}

	// shed-writes: batch counts as a write.
	escalate(s.brown, 1)
	if code, _ := status("PUT", "/kv/1", "7"); code != http.StatusServiceUnavailable {
		t.Fatalf("write under shed-writes: %d, want 503", code)
	}
	if code, _ := status("POST", "/batch", `{"ops":[{"op":"get","key":1}]}`); code != http.StatusServiceUnavailable {
		t.Fatalf("batch under shed-writes: %d, want 503", code)
	}
	if code, _ := status("GET", "/kv/1", ""); code != 200 {
		t.Fatalf("read under shed-writes: %d", code)
	}

	// shed-all: reads go too, but observability stays up.
	escalate(s.brown, 1)
	if code, _ := status("GET", "/kv/1", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("read under shed-all: %d, want 503", code)
	}
	if code, _ := status("GET", "/stats", ""); code != 200 {
		t.Fatalf("/stats under shed-all: %d — observability must never brown out", code)
	}

	_, val := scrape(t, c, ts.URL)
	if v, ok := val(`stmkvd_brownout_state{state="shed-all"}`); !ok || v != 1 {
		t.Fatalf("brownout one-hot shed-all = (%v, %v), want 1", v, ok)
	}
	if v, ok := val(`stmkvd_brownout_state{state="off"}`); !ok || v != 0 {
		t.Fatalf("brownout one-hot off = (%v, %v), want 0", v, ok)
	}
	for _, class := range []string{"read", "write", "scan"} {
		if v, ok := val(`stmkvd_brownout_shed_total{class="` + class + `"}`); !ok || v < 1 {
			t.Fatalf("brownout shed counter for %s = (%v, %v)", class, v, ok)
		}
	}
}

// TestProtoDeadlineShedAtGate sends a deadline-flagged frame at a held
// gate and checks the wire answer is StatusDeadlineExceeded, not a
// stalled worker.
func TestProtoDeadlineShedAtGate(t *testing.T) {
	h := startProto(t, Config{AdmissionWidth: 1})
	if _, err := h.c.Put(1, 1); err != nil {
		t.Fatal(err)
	}

	h.srv.gate.Enter()
	conn, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload, err := kvproto.AppendRequest(nil, &kvproto.Request{
		ID: 42, Op: kvproto.OpPut, Key: 2, Val: 2, TimeoutMs: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := kvproto.AppendFrame(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	raw, err := kvproto.ReadFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := kvproto.DecodeResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 42 || resp.Status != kvproto.StatusDeadlineExceeded {
		t.Fatalf("held gate answered (id %d, %v, %q), want deadline-exceeded", resp.ID, resp.Status, resp.Msg)
	}
	if got := h.srv.shed.deadline[surfProto][shedStageGate].Load(); got != 1 {
		t.Fatalf("proto gate-stage shed counter = %d, want 1", got)
	}
	h.srv.gate.Exit()

	// The pipelined client still works once the gate frees up.
	if _, err := h.c.Put(3, 3); err != nil {
		t.Fatalf("post-release Put: %v", err)
	}
}

// TestProtoBrownoutSheds mirrors the HTTP ladder walk on the wire
// surface: shed ops answer StatusUnavailable, which the client maps to
// its retryable ErrUnavailable.
func TestProtoBrownoutSheds(t *testing.T) {
	srv, err := New(Config{SpaceWords: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.brown = resilience.NewBrownout(resilience.BrownoutConfig{
		SLO: time.Millisecond, EscalateAfter: 1, CalmAfter: 2, MinSamples: 1,
	})
	escalate(srv.brown, 1) // shed-scans before the listener starts
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go srv.ServeProto(lis)
	c := kvclient.New(lis.Addr().String(), kvclient.Options{})
	t.Cleanup(c.Close)

	if _, err := c.Put(1, 10); err != nil {
		t.Fatalf("write under shed-scans: %v", err)
	}
	if _, _, _, err := c.Scan(0); !errors.Is(err, kvclient.ErrUnavailable) {
		t.Fatalf("scan under shed-scans: %v, want ErrUnavailable", err)
	}
	if _, _, err := c.Get(1); err != nil {
		t.Fatalf("read under shed-scans: %v", err)
	}
	if srv.shed.brownout[resilience.ClassScan].Load() == 0 {
		t.Fatal("proto scan shed not counted")
	}

	// Walk back to off on calm evidence and the same ops succeed again.
	for i := 0; srv.brown.Level() != resilience.LevelOff; i++ {
		if i > 100 {
			t.Fatal("ladder never walked back on calm periods")
		}
		srv.brown.Step(0, 0)
	}
	if _, _, _, err := c.Scan(0); err != nil {
		t.Fatalf("scan after walk-back: %v", err)
	}
}

// TestProtoBadFrameIsolation is satellite (c): a desynced frame
// mid-pipeline kills exactly its own connection. A sibling connection's
// pipeline never notices, and the bad frame is counted.
func TestProtoBadFrameIsolation(t *testing.T) {
	h := startProto(t, Config{})
	before := h.srv.proto.badFrames.Load()

	// Connection A, raw: a valid Put, then a well-framed payload with a
	// junk op byte, then another valid Put the server must never run.
	conn, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var stream []byte
	good1, err := kvproto.AppendRequest(nil, &kvproto.Request{ID: 1, Op: kvproto.OpPut, Key: 100, Val: 1})
	if err != nil {
		t.Fatal(err)
	}
	stream, _ = kvproto.AppendFrame(stream, good1)
	junk := binary.LittleEndian.AppendUint64(nil, 2)
	junk = append(junk, 0xEE)
	stream, _ = kvproto.AppendFrame(stream, junk)
	good2, err := kvproto.AppendRequest(nil, &kvproto.Request{ID: 3, Op: kvproto.OpPut, Key: 101, Val: 1})
	if err != nil {
		t.Fatal(err)
	}
	stream, _ = kvproto.AppendFrame(stream, good2)
	if _, err := conn.Write(stream); err != nil {
		t.Fatal(err)
	}

	// A gets its answers for the prefix, an error for the junk, then EOF
	// — never an answer for the post-desync frame.
	sawError := false
	for {
		raw, err := kvproto.ReadFrame(conn, nil)
		if err != nil {
			break
		}
		resp, err := kvproto.DecodeResponse(raw)
		if err != nil {
			t.Fatalf("undecodable response after desync: %v", err)
		}
		if resp.ID == 3 {
			t.Fatal("server executed a frame after the desync")
		}
		if resp.Status == kvproto.StatusError {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("desynced connection died without a diagnostic")
	}
	if h.srv.proto.badFrames.Load() != before+1 {
		t.Fatalf("bad frames %d -> %d, want +1", before, h.srv.proto.badFrames.Load())
	}

	// Connection B (the harness client) is a different pipeline: fully
	// unaffected, before and after A's death.
	for i := uint64(0); i < 50; i++ {
		if _, err := h.c.Put(i, i); err != nil {
			t.Fatalf("sibling connection broken by A's desync: %v", err)
		}
		if val, found, err := h.c.Get(i); err != nil || !found || val != i {
			t.Fatalf("sibling read (%d, %v, %v)", val, found, err)
		}
	}
}

// TestStatsResilienceBlocks checks /stats carries the new brownout and
// deadline blocks even on a server with neither configured.
func TestStatsResilienceBlocks(t *testing.T) {
	_, ts := newTestServer(t, Config{SpaceWords: 1 << 16})
	c := ts.Client()
	var st struct {
		Brownout struct {
			Enabled bool `json:"enabled"`
		} `json:"brownout"`
		Deadline struct {
			Shed map[string]map[string]uint64 `json:"shed"`
		} `json:"deadline"`
	}
	if code := doJSON(t, c, "GET", ts.URL+"/stats", "", &st); code != 200 {
		t.Fatalf("/stats: %d", code)
	}
	if st.Brownout.Enabled {
		t.Fatal("brownout reported enabled without a ladder")
	}
	for _, surf := range []string{"http", "proto"} {
		stages, ok := st.Deadline.Shed[surf]
		if !ok {
			t.Fatalf("deadline shed block missing surface %q", surf)
		}
		for _, stage := range []string{"dequeue", "gate", "op"} {
			if _, ok := stages[stage]; !ok {
				t.Fatalf("deadline shed block missing %s/%s", surf, stage)
			}
		}
	}
}
