// The server's observability face: one obs.Registry exposing every layer
// — STM commit/abort histograms split by cause, per-op request latency on
// both surfaces, WAL flush latency and batch sizes, admission gate state
// and wait time, per-shard heat, durability lifecycle — plus the sampled
// transaction flight recorder behind /debug/txtrace.
package kvserver

import (
	"net/http"
	"strconv"
	"time"

	"tinystm/internal/kvproto"
	"tinystm/internal/obs"
	"tinystm/internal/resilience"
	"tinystm/internal/txn"
	"tinystm/internal/wal"
)

// Request surfaces and op kinds label the request-latency histograms.
const (
	surfHTTP = iota
	surfProto
	nSurfaces
)

var surfaceNames = [nSurfaces]string{"http", "proto"}

const (
	mopGet = iota
	mopPut
	mopDelete
	mopCAS
	mopAdd
	mopBatch
	mopScan
	nReqOps
)

var reqOpNames = [nReqOps]string{"get", "put", "delete", "cas", "add", "batch", "scan"}

// txTraceDefaultEvery is the default flight-recorder sampling rate (one
// atomic block in N); txTraceCap the retained event window.
const (
	txTraceDefaultEvery = 64
	txTraceCap          = 4096
)

// metrics bundles the server's instruments and their registry. Everything
// the hot paths touch (histograms, recorder, heat) is lock-free; the
// counters and gauges rendered from other layers' state are read at
// scrape time through the OnScrape cache below.
type metrics struct {
	reg *obs.Registry

	// reqAll aggregates every data request across both surfaces — the
	// histogram the tuning runtime differences per period; req splits
	// the same observations by surface and op for exposition.
	reqAll *obs.Histogram
	req    [nSurfaces][nReqOps]*obs.Histogram

	admWaitNs   *obs.Histogram
	walFlushNs  *obs.Histogram
	walBatchOps *obs.Histogram

	tmObs *obs.TMObs
	rec   *obs.Recorder
	heat  *obs.ShardHeat

	// Scrape-time caches, refreshed by the registry's OnScrape hook.
	// Hook and render both run under the registry mutex, so every
	// CounterFunc/GaugeFunc below reads one consistent snapshot instead
	// of re-walking the TM's descriptor table per sample.
	st       txn.Stats
	tooOld   uint64
	walStats wal.Stats
}

// newMetrics builds every instrument and registers the full metric set.
// Called from New before the tuning runtime (which borrows reqAll).
func newMetrics(s *Server) *metrics {
	m := &metrics{reg: obs.NewRegistry(), reqAll: obs.NewHistogram()}
	every := uint64(txTraceDefaultEvery)
	switch {
	case s.cfg.TxTraceEvery > 0:
		every = uint64(s.cfg.TxTraceEvery)
	case s.cfg.TxTraceEvery < 0:
		every = 0 // recorder disabled
	}
	if every > 0 {
		m.rec = obs.NewRecorder(txTraceCap, every)
	}
	m.tmObs = obs.NewTMObs(m.rec)
	m.heat = obs.NewShardHeat(int(s.cfg.Shards))
	m.admWaitNs = obs.NewHistogram()
	m.walFlushNs = obs.NewHistogram()
	m.walBatchOps = obs.NewHistogram()

	m.reg.OnScrape(func() {
		m.st = s.tm.Stats()
		m.tooOld, _, _, _ = s.tm.SnapshotCounts()
		if log := s.dur.walLog(); log != nil {
			m.walStats = log.Stats()
		}
	})

	lat := obs.LatencyBounds()

	// --- STM ---
	m.reg.CounterFunc("stm_commits_total", "Committed transactions.", nil,
		func() float64 { return float64(m.st.Commits) })
	m.reg.CounterFunc("stm_extensions_total", "Successful snapshot extensions.", nil,
		func() float64 { return float64(m.st.Extensions) })
	m.reg.CounterFunc("stm_rollovers_total", "Clock roll-over freezes.", nil,
		func() float64 { return float64(m.st.RollOvers) })
	m.reg.CounterFunc("stm_reconfigs_total", "Dynamic lock-table reconfigurations.", nil,
		func() float64 { return float64(m.st.Reconfigs) })
	m.reg.CounterFunc("stm_cm_switches_total", "Live contention-management policy switches.", nil,
		func() float64 { return float64(m.st.CMSwitches) })
	m.reg.Histogram("stm_commit_seconds", "Duration of committed transaction attempts.", nil,
		m.tmObs.CommitNs, 1e-9, lat)
	for k := 0; k < txn.NAbortKinds; k++ {
		kind := txn.AbortKind(k)
		m.reg.CounterFunc("stm_aborts_total", "Aborted transaction attempts by cause.",
			obs.Labels{"cause": kind.String()},
			func() float64 { return float64(m.st.AbortsByKind[kind]) })
		m.reg.Histogram("stm_abort_seconds", "Duration of aborted transaction attempts by cause.",
			obs.Labels{"cause": kind.String()}, m.tmObs.AbortNs[kind], 1e-9, lat)
	}

	// --- MVCC snapshot sidecar ---
	m.reg.CounterFunc("stm_snapshot_too_old_total", "Snapshot reads aborted because their versions were trimmed.", nil,
		func() float64 { return float64(m.tooOld) })
	m.reg.CounterFunc("stm_snapshot_reads_live_total", "Snapshot-mode reads served from live memory.", nil,
		func() float64 { return float64(m.st.SnapshotLiveReads) })
	m.reg.CounterFunc("stm_snapshot_reads_sidecar_total", "Snapshot-mode reads served from retained versions.", nil,
		func() float64 { return float64(m.st.SnapshotVersionReads) })
	m.reg.CounterFunc("stm_versions_published_total", "Pre-images delivered to the MVCC sidecar.", nil,
		func() float64 { return float64(m.st.VersionsPublished) })
	m.reg.CounterFunc("stm_versions_trimmed_total", "Versions evicted from the MVCC sidecar.", nil,
		func() float64 { return float64(m.st.VersionsTrimmed) })
	m.reg.GaugeFunc("stm_version_budget", "Per-shard retained-version budget (0 when snapshots are off).", nil,
		func() float64 { return float64(s.tm.VersionBudget()) })

	// --- Requests ---
	for surf := 0; surf < nSurfaces; surf++ {
		for op := 0; op < nReqOps; op++ {
			m.req[surf][op] = obs.NewHistogram()
			m.reg.Histogram("stmkvd_request_seconds", "Data-request latency by surface and op.",
				obs.Labels{"surface": surfaceNames[surf], "op": reqOpNames[op]},
				m.req[surf][op], 1e-9, lat)
		}
	}

	// --- Store ---
	m.reg.GaugeFunc("stmkvd_keys", "Live keys in the store.", nil,
		func() float64 { return float64(s.store.Len()) })
	m.reg.GaugeFunc("stmkvd_uptime_seconds", "Seconds since the server booted.", nil,
		func() float64 { return time.Since(s.start).Seconds() })
	for i := 0; i < m.heat.Shards(); i++ {
		sh := i
		ls := obs.Labels{"shard": strconv.Itoa(sh)}
		m.reg.CounterFunc("stmkvd_shard_ops_total", "Completed single-key operations per store shard.", ls,
			func() float64 { return float64(m.heat.Ops(sh)) })
		m.reg.CounterFunc("stmkvd_shard_aborts_total", "Transaction retries per store shard (heat map).", ls,
			func() float64 { return float64(m.heat.Aborts(sh)) })
	}

	// --- Admission gate (zero-valued series when disabled) ---
	m.reg.GaugeFunc("stmkvd_admission_width", "Update-admission gate width (0: gate disabled).", nil,
		func() float64 { return float64(s.admissionWidth()) })
	m.reg.GaugeFunc("stmkvd_admission_inflight", "Update transactions currently admitted.", nil,
		func() float64 {
			if s.gate == nil {
				return 0
			}
			_, inflight, _, _ := s.gate.Stats()
			return float64(inflight)
		})
	m.reg.CounterFunc("stmkvd_admission_admitted_total", "Updates admitted through the gate.", nil,
		func() float64 {
			if s.gate == nil {
				return 0
			}
			_, _, admitted, _ := s.gate.Stats()
			return float64(admitted)
		})
	m.reg.CounterFunc("stmkvd_admission_waited_total", "Updates that blocked at the gate.", nil,
		func() float64 {
			if s.gate == nil {
				return 0
			}
			_, _, _, waited := s.gate.Stats()
			return float64(waited)
		})
	m.reg.Histogram("stmkvd_admission_wait_seconds", "Time update requests spent waiting at the admission gate.", nil,
		m.admWaitNs, 1e-9, lat)
	m.reg.CounterFunc("stmkvd_admission_expired_total", "Updates refused at the gate because their deadline passed.", nil,
		func() float64 {
			if s.gate == nil {
				return 0
			}
			return float64(s.gate.Expired())
		})

	// --- Resilience: deadline sheds and brownout ladder ---
	for surf := 0; surf < nSurfaces; surf++ {
		for st := 0; st < nShedStages; st++ {
			surf, st := surf, st
			m.reg.CounterFunc("stmkvd_deadline_shed_total", "Requests shed because their deadline budget ran out, by surface and stage.",
				obs.Labels{"surface": surfaceNames[surf], "stage": shedStageNames[st]},
				func() float64 { return float64(s.shed.deadline[surf][st].Load()) })
		}
	}
	for lv := 0; lv < resilience.NumLevels; lv++ {
		lv := resilience.Level(lv)
		m.reg.GaugeFunc("stmkvd_brownout_state", "Brownout shed level (one-hot; off when no ladder is configured).",
			obs.Labels{"state": lv.String()},
			func() float64 {
				cur := resilience.LevelOff
				if s.brown != nil {
					cur = s.brown.Level()
				}
				if cur == lv {
					return 1
				}
				return 0
			})
	}
	for c := 0; c < resilience.NumClasses; c++ {
		c := resilience.Class(c)
		m.reg.CounterFunc("stmkvd_brownout_shed_total", "Requests shed by the brownout controller, by class.",
			obs.Labels{"class": c.String()},
			func() float64 { return float64(s.shed.brownout[c].Load()) })
	}

	// --- Durability / WAL ---
	for _, st := range []int32{stateStarting, stateReady, stateDegraded, stateFailed} {
		st := st
		m.reg.GaugeFunc("stmkvd_durability_state", "Server lifecycle state (one-hot).",
			obs.Labels{"state": stateName(st)},
			func() float64 {
				if s.dur.state.Load() == st {
					return 1
				}
				return 0
			})
	}
	m.reg.CounterFunc("stmkvd_redo_records_total", "Redo records handed to the durability hook.", nil,
		func() float64 { return float64(m.st.RedoRecords) })
	m.reg.CounterFunc("stmkvd_wal_appends_total", "Records staged to the write-ahead log.", nil,
		func() float64 { return float64(m.walStats.Appends) })
	m.reg.CounterFunc("stmkvd_wal_batches_total", "Flusher batches that reached disk.", nil,
		func() float64 { return float64(m.walStats.Batches) })
	m.reg.CounterFunc("stmkvd_wal_syncs_total", "WAL fsyncs.", nil,
		func() float64 { return float64(m.walStats.Syncs) })
	m.reg.CounterFunc("stmkvd_wal_rotations_total", "WAL segment rotations.", nil,
		func() float64 { return float64(m.walStats.Rotations) })
	m.reg.Histogram("stmkvd_wal_flush_seconds", "Write+fsync duration per WAL batch.", nil,
		m.walFlushNs, 1e-9, lat)
	m.reg.Histogram("stmkvd_wal_batch_ops", "Records per flushed WAL batch.", nil,
		m.walBatchOps, 1, obs.SizeBounds())

	// --- Binary protocol listener ---
	m.reg.GaugeFunc("stmkvd_proto_conns", "Open binary-protocol connections.", nil,
		func() float64 { return float64(s.proto.conns.Load()) })
	m.reg.CounterFunc("stmkvd_proto_accepted_total", "Binary-protocol connections accepted.", nil,
		func() float64 { return float64(s.proto.accepted.Load()) })
	m.reg.CounterFunc("stmkvd_proto_ops_total", "Binary-protocol requests executed.", nil,
		func() float64 { return float64(s.proto.ops.Load()) })
	m.reg.CounterFunc("stmkvd_proto_err_ops_total", "Binary-protocol responses with a non-OK status.", nil,
		func() float64 { return float64(s.proto.errOps.Load()) })
	m.reg.CounterFunc("stmkvd_proto_bad_frames_total", "Connections dropped for framing/decode errors.", nil,
		func() float64 { return float64(s.proto.badFrames.Load()) })

	return m
}

// timed wraps an HTTP data handler with request-latency recording.
func (s *Server) timed(op int, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		d := uint64(time.Since(t0))
		s.met.reqAll.Record(d)
		s.met.req[surfHTTP][op].Record(d)
	}
}

// protoReqOp maps a wire op to its request-latency op index.
func protoReqOp(op kvproto.Op) int {
	switch op {
	case kvproto.OpGet:
		return mopGet
	case kvproto.OpPut:
		return mopPut
	case kvproto.OpDelete:
		return mopDelete
	case kvproto.OpCAS:
		return mopCAS
	case kvproto.OpAdd:
		return mopAdd
	case kvproto.OpBatch:
		return mopBatch
	default:
		return mopScan
	}
}

// Metrics exposes the server's registry (tests; embedding servers).
func (s *Server) Metrics() *obs.Registry { return s.met.reg }

// TxTrace returns up to limit of the most recent flight-recorder events,
// oldest first; nil when the recorder is disabled.
func (s *Server) TxTrace(limit int) []obs.Event {
	if s.met.rec == nil {
		return nil
	}
	return s.met.rec.Dump(limit)
}

// wireTxEvent is the JSON form of one flight-recorder event.
type wireTxEvent struct {
	Seq     uint64 `json:"seq"`
	Time    int64  `json:"t_unix_ns"`
	Kind    string `json:"kind"`
	Cause   string `json:"cause,omitempty"`
	CM      string `json:"cm"`
	Slot    uint32 `json:"slot"`
	Attempt uint32 `json:"attempt"`
	DurNs   uint64 `json:"dur_ns,omitempty"`
	Locks   uint64 `json:"locks"`
	Shifts  uint32 `json:"shifts"`
	Hier    uint64 `json:"hier"`
}

func (s *Server) handleTxTrace(w http.ResponseWriter, r *http.Request) {
	if s.met.rec == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	evs := s.met.rec.Dump(limit)
	out := make([]wireTxEvent, len(evs))
	for i, e := range evs {
		we := wireTxEvent{
			Seq:     e.Seq,
			Time:    e.TimeUnixNano,
			Kind:    e.Kind.String(),
			CM:      e.CM.String(),
			Slot:    e.Slot,
			Attempt: e.Attempt,
			DurNs:   e.DurNs,
			Locks:   e.Locks,
			Shifts:  e.Shifts,
			Hier:    e.Hier,
		}
		if e.Kind == obs.EvAbort {
			we.Cause = e.Cause.String()
		}
		out[i] = we
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":      true,
		"sample_every": s.met.rec.SampleEvery(),
		"capacity":     s.met.rec.Cap(),
		"recorded":     s.met.rec.Recorded(),
		"events":       out,
	})
}
