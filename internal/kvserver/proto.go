// The binary-protocol face of the server: the same store, lifecycle gate
// and admission gate as the HTTP handlers, behind the kvproto framing.
// One TCP connection carries many requests in flight — the reader
// dispatches each op to its own goroutine (bounded per connection) and
// the writer streams responses back in COMPLETION order, so a slow
// update never convoys the reads pipelined behind it.
package kvserver

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tinystm/internal/core"
	"tinystm/internal/kvproto"
	"tinystm/internal/kvstore"
)

// protoInflight bounds one connection's concurrently executing ops: the
// pipeline stays thousands deep in the kernel socket buffers, but only
// this many transactions run at once per connection (the admission gate
// then bounds updaters across ALL connections).
const protoInflight = 256

// protoStats carries the binary listener's counters for /stats and the
// smoke tests' zero-protocol-errors assertion.
type protoStats struct {
	//stm:allow-atomic listener accounting outside any transaction
	conns atomic.Int64 // currently open connections
	//stm:allow-atomic listener accounting outside any transaction
	accepted atomic.Uint64 // connections accepted in total
	//stm:allow-atomic listener accounting outside any transaction
	ops atomic.Uint64 // requests executed
	//stm:allow-atomic listener accounting outside any transaction
	errOps atomic.Uint64 // responses with a non-OK status
	//stm:allow-atomic listener accounting outside any transaction
	badFrames atomic.Uint64 // connections dropped for framing/decode errors
}

func (p *protoStats) stats() map[string]any {
	return map[string]any{
		"conns":      p.conns.Load(),
		"accepted":   p.accepted.Load(),
		"ops":        p.ops.Load(),
		"err_ops":    p.errOps.Load(),
		"bad_frames": p.badFrames.Load(),
	}
}

// ServeProto accepts kvproto connections on l until the listener closes.
// Each connection gets a reader (frames in, ops dispatched) and a writer
// (responses out, coalesced flushes); the call blocks like http.Serve.
func (s *Server) ServeProto(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.proto.accepted.Add(1)
		s.proto.conns.Add(1)
		go func() {
			defer s.proto.conns.Add(-1)
			s.serveProtoConn(conn)
		}()
	}
}

// serveProtoConn runs one connection's reader loop. Any framing error —
// oversized length, CRC mismatch, truncation — kills the connection:
// a byte stream that lost framing cannot resynchronize.
func (s *Server) serveProtoConn(conn net.Conn) {
	defer conn.Close()

	// The writer drains out. Responses complete out of order by design;
	// the id the client chose is its only matching key. The buffered
	// channel lets op goroutines finish without rendezvousing with the
	// flush, and the writer flushes only when the channel runs dry —
	// group-flush for pipelined load, immediate for ping-pong callers.
	out := make(chan []byte, protoInflight)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriterSize(conn, 64<<10)
		for payload := range out {
			frame, err := kvproto.AppendFrame(nil, payload)
			if err != nil {
				continue // oversized payload is a server bug; drop the response, not the conn
			}
			if _, err := bw.Write(frame); err != nil {
				// Drain without writing: the connection is gone, but op
				// goroutines must never block on send.
				for range out {
				}
				return
			}
			if len(out) == 0 {
				if bw.Flush() != nil {
					for range out {
					}
					return
				}
			}
		}
		bw.Flush()
	}()

	var wg sync.WaitGroup
	slots := make(chan struct{}, protoInflight)
	var buf []byte
	for {
		payload, err := kvproto.ReadFrame(conn, buf)
		if err != nil {
			if err != io.EOF {
				s.proto.badFrames.Add(1)
			}
			break
		}
		buf = payload
		req, err := kvproto.DecodeRequest(payload)
		if err != nil {
			// The frame was intact (CRC passed) but the payload is not a
			// request we understand: answer StatusError when the id is
			// recoverable, then drop the connection — the peer is broken.
			s.proto.badFrames.Add(1)
			if len(payload) >= 8 {
				id := binary.LittleEndian.Uint64(payload[:8])
				s.sendProto(out, &kvproto.Response{ID: id, Op: kvproto.OpGet, Status: kvproto.StatusError, Msg: err.Error()})
			}
			break
		}
		// Re-anchor the relative budget to an absolute deadline the moment
		// the request leaves the socket: transit time never counts against
		// it, and the server's own clock is the only one consulted.
		var dl time.Time
		if req.TimeoutMs > 0 {
			dl = time.Now().Add(time.Duration(req.TimeoutMs) * time.Millisecond)
		}
		slots <- struct{}{}
		wg.Add(1)
		go func(req *kvproto.Request, dl time.Time) {
			defer func() { <-slots; wg.Done() }()
			// Dequeue check: the op may have sat behind a full pipeline
			// (the slots send above blocks when protoInflight ops run).
			// Starting work for a client that already gave up is waste.
			if expired(dl) {
				s.shed.deadline[surfProto][shedStageDequeue].Add(1)
				s.sendProto(out, &kvproto.Response{
					ID: req.ID, Op: req.Op,
					Status: kvproto.StatusDeadlineExceeded,
					Msg:    "deadline exceeded before execution (dequeue)",
				})
				return
			}
			s.sendProto(out, s.protoExec(req, dl))
		}(req, dl)
	}
	wg.Wait()
	close(out)
	<-writerDone
}

// sendProto encodes and enqueues one response.
func (s *Server) sendProto(out chan<- []byte, resp *kvproto.Response) {
	if resp.Status != kvproto.StatusOK {
		s.proto.errOps.Add(1)
	}
	payload, err := kvproto.AppendResponse(nil, resp)
	if err != nil {
		// Encoding our own response can only fail on a server bug
		// (oversized pair list); degrade to a generic error.
		payload, _ = kvproto.AppendResponse(nil, &kvproto.Response{
			ID: resp.ID, Op: resp.Op, Status: kvproto.StatusError, Msg: "response encoding failed",
		})
	}
	out <- payload
}

// protoOpKinds maps wire sub-op codes to store op kinds (same order).
var protoOpKinds = [...]kvstore.OpKind{
	kvproto.OpGet:    kvstore.OpGet,
	kvproto.OpPut:    kvstore.OpPut,
	kvproto.OpDelete: kvstore.OpDelete,
	kvproto.OpCAS:    kvstore.OpCAS,
	kvproto.OpAdd:    kvstore.OpAdd,
}

// protoShedDeadline stamps a deadline-shed response and counts it.
func (s *Server) protoShedDeadline(resp *kvproto.Response, stage int) *kvproto.Response {
	s.shed.deadline[surfProto][stage].Add(1)
	resp.Status = kvproto.StatusDeadlineExceeded
	resp.Msg = "deadline exceeded before execution (" + shedStageNames[stage] + ")"
	return resp
}

// protoGate claims an update-admission slot under the request's
// deadline; on expiry it stamps the shed response instead.
func (s *Server) protoGate(resp *kvproto.Response, dl time.Time) (release func(), ok bool) {
	release, ok = s.enterUpdateUntil(dl)
	if !ok {
		s.protoShedDeadline(resp, shedStageGate)
		return nil, false
	}
	return release, true
}

// protoExec runs one request against the store and builds its response.
// It applies the same gates as the HTTP path: the lifecycle gate
// (replaying/degraded/failed servers refuse work), brownout class
// shedding, the admission gate (update transactions only, bounded by
// the request's deadline), and the recover layer that converts arena
// exhaustion and failed durability waits into statuses instead of
// tearing down the connection.
func (s *Server) protoExec(req *kvproto.Request, dl time.Time) (resp *kvproto.Response) {
	s.proto.ops.Add(1)
	resp = &kvproto.Response{ID: req.ID, Op: req.Op}
	if msg, ok := s.protoAdmit(req.Op); !ok {
		resp.Status = kvproto.StatusUnavailable
		resp.Msg = msg
		return resp
	}
	t0 := time.Now()
	defer func() {
		d := uint64(time.Since(t0))
		s.met.reqAll.Record(d)
		s.met.req[surfProto][protoReqOp(req.Op)].Record(d)
	}()
	defer func() {
		if rec := recover(); rec != nil {
			if rec == core.ErrSpaceExhausted {
				resp.Status = kvproto.StatusError
				resp.Msg = core.ErrSpaceExhausted.Error()
				return
			}
			if derr, ok := rec.(*kvstore.DurabilityError); ok {
				resp.Status = kvproto.StatusUnavailable
				resp.Msg = derr.Error()
				return
			}
			panic(rec)
		}
	}()
	switch req.Op {
	case kvproto.OpGet:
		resp.Val, resp.Found = s.store.Get(req.Key)
	case kvproto.OpPut:
		release, ok := s.protoGate(resp, dl)
		if !ok {
			return resp
		}
		defer release()
		resp.OK = s.store.Put(req.Key, req.Val)
	case kvproto.OpDelete:
		release, ok := s.protoGate(resp, dl)
		if !ok {
			return resp
		}
		defer release()
		resp.Found = s.store.Delete(req.Key)
	case kvproto.OpCAS:
		release, ok := s.protoGate(resp, dl)
		if !ok {
			return resp
		}
		defer release()
		resp.OK = s.store.CAS(req.Key, req.Old, req.Val)
	case kvproto.OpAdd:
		release, ok := s.protoGate(resp, dl)
		if !ok {
			return resp
		}
		defer release()
		resp.Val = s.store.Add(req.Key, req.Val)
	case kvproto.OpBatch:
		if len(req.Ops) == 0 {
			resp.Status = kvproto.StatusError
			resp.Msg = "empty batch"
			return resp
		}
		// The batch is one multi-key transaction: re-check the budget
		// right before the expensive part.
		if expired(dl) {
			return s.protoShedDeadline(resp, shedStageOp)
		}
		ops := make([]kvstore.Op, len(req.Ops))
		for i, o := range req.Ops {
			ops[i] = kvstore.Op{Kind: protoOpKinds[o.Op], Key: o.Key, Val: o.Val, Old: o.Old}
		}
		if !readOnlyOps(ops) {
			release, ok := s.protoGate(resp, dl)
			if !ok {
				return resp
			}
			defer release()
		}
		res := s.store.Apply(ops)
		resp.Results = make([]kvproto.BatchResult, len(res))
		for i, r := range res {
			resp.Results[i] = kvproto.BatchResult{Val: r.Val, Found: r.Found, OK: r.OK}
		}
	case kvproto.OpScan:
		// The full-table walk must not start for a client that already
		// gave up.
		if expired(dl) {
			return s.protoShedDeadline(resp, shedStageOp)
		}
		limit := maxScanPairs
		if req.Limit > 0 && int(req.Limit) < limit {
			limit = int(req.Limit)
		}
		pairs, total := s.store.Scan(limit)
		resp.Total = total
		resp.Snapshot = s.tm.SnapshotsEnabled()
		if len(pairs) > 0 {
			resp.Pairs = make([]kvproto.KV, len(pairs))
			for i, kv := range pairs {
				resp.Pairs[i] = kvproto.KV{Key: kv.Key, Val: kv.Val}
			}
		}
	case kvproto.OpStats:
		st := s.tm.Stats()
		resp.Stats = kvproto.Stats{
			Commits:        st.Commits,
			Aborts:         st.Aborts,
			Keys:           s.store.Len(),
			AdmissionWidth: uint32(s.admissionWidth()),
		}
	default:
		resp.Status = kvproto.StatusError
		resp.Msg = "unknown op"
	}
	return resp
}

// protoAdmit is the lifecycle gate for binary ops, mirroring admit():
// stats always answer (observability), reads survive degraded mode,
// everything else needs a ready server.
func (s *Server) protoAdmit(op kvproto.Op) (msg string, ok bool) {
	if op == kvproto.OpStats {
		return "", true
	}
	if class := classifyProtoOp(op); s.brownSheds(class) {
		return brownoutMsg(class), false
	}
	switch s.dur.state.Load() {
	case stateReady:
		return "", true
	case stateDegraded:
		if op == kvproto.OpGet || op == kvproto.OpScan {
			return "", true
		}
		return "degraded: write-ahead log failed; serving reads only", false
	case stateFailed:
		return "recovery failed; see /stats", false
	default:
		return "recovering write-ahead log", false
	}
}
