package kvserver

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// scrape fetches /metrics and returns the body plus a sample lookup:
// value(series) for an exact series string like
// `stm_commits_total` or `stmkvd_durability_state{state="ready"}`.
func scrape(t *testing.T, c *http.Client, url string) (string, func(series string) (float64, bool)) {
	t.Helper()
	resp, err := c.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content-type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	vals := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("malformed sample value in %q: %v", line, err)
		}
		vals[line[:sp]] = v
	}
	return body, func(series string) (float64, bool) { v, ok := vals[series]; return v, ok }
}

// TestMetricsEndpoint drives traffic over a fully-featured server and
// checks the exposition covers every layer with live values.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{
		SpaceWords: 1 << 18, Shards: 4, Buckets: 8,
		Snapshots: true, AdmissionWidth: 8,
	})
	c := ts.Client()

	for i := 0; i < 32; i++ {
		var ins struct{ Inserted bool }
		doJSON(t, c, "PUT", ts.URL+"/kv/"+strconv.Itoa(i), "1", &ins)
		var got struct{ Val uint64 }
		doJSON(t, c, "GET", ts.URL+"/kv/"+strconv.Itoa(i), "", &got)
	}

	body, val := scrape(t, c, ts.URL)

	if v, ok := val("stm_commits_total"); !ok || v < 32 {
		t.Fatalf("stm_commits_total = %v (ok=%v), want >= 32", v, ok)
	}
	if v, ok := val(`stmkvd_request_seconds_count{op="put",surface="http"}`); !ok || v != 32 {
		t.Fatalf(`request count {op="put"} = %v (ok=%v), want 32`, v, ok)
	}
	// The histogram carries bucket series and sum/count agreement.
	if !regexp.MustCompile(`stmkvd_request_seconds_bucket\{op="put",surface="http",le="[0-9e.+-]+"\} `).MatchString(body) {
		t.Fatal("no request-latency bucket series in exposition")
	}
	if v, ok := val(`stmkvd_request_seconds_bucket{op="put",surface="http",le="+Inf"}`); !ok || v != 32 {
		t.Fatalf("+Inf bucket = %v (ok=%v), want 32", v, ok)
	}
	if v, ok := val(`stmkvd_durability_state{state="ready"}`); !ok || v != 1 {
		t.Fatalf("durability ready gauge = %v (ok=%v), want 1", v, ok)
	}
	for _, st := range []string{"starting", "degraded", "failed"} {
		if v, _ := val(`stmkvd_durability_state{state="` + st + `"}`); v != 0 {
			t.Fatalf("durability %s gauge = %v, want 0", st, v)
		}
	}
	if v, ok := val("stmkvd_keys"); !ok || v != 32 {
		t.Fatalf("stmkvd_keys = %v (ok=%v), want 32", v, ok)
	}
	if v, ok := val("stmkvd_admission_width"); !ok || v != 8 {
		t.Fatalf("admission width = %v (ok=%v), want 8", v, ok)
	}
	if v, ok := val("stmkvd_admission_admitted_total"); !ok || v < 32 {
		t.Fatalf("admitted = %v (ok=%v), want >= 32", v, ok)
	}
	// 32 distinct keys over 4 shards: the heat map must have landed ops
	// on more than one shard.
	hot := 0
	for sh := 0; sh < 4; sh++ {
		if v, _ := val(`stmkvd_shard_ops_total{shard="` + strconv.Itoa(sh) + `"}`); v > 0 {
			hot++
		}
	}
	if hot < 2 {
		t.Fatalf("shard heat landed on %d shards, want >= 2", hot)
	}
	// Abort-cause family is fully enumerated even when all-zero.
	if _, ok := val(`stm_aborts_total{cause="read-conflict"}`); !ok {
		t.Fatal("abort cause series missing")
	}
}

// TestMetricsAlwaysAdmitted proves /metrics answers while the server is
// still starting (recovery held open), reporting the one-hot starting
// state — the probe the crash smoke test relies on.
func TestMetricsAlwaysAdmitted(t *testing.T) {
	gate := make(chan struct{})
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{
		SpaceWords: 1 << 18, Shards: 4, Buckets: 8, Snapshots: true,
		Durability: DurabilityGroup, WALDir: dir, recoveryGate: gate,
	})
	c := ts.Client()

	_, val := scrape(t, c, ts.URL)
	if v, ok := val(`stmkvd_durability_state{state="starting"}`); !ok || v != 1 {
		t.Fatalf("starting gauge = %v (ok=%v), want 1", v, ok)
	}
	close(gate)
	waitReady(t, s)
	_, val = scrape(t, c, ts.URL)
	if v, _ := val(`stmkvd_durability_state{state="ready"}`); v != 1 {
		t.Fatal("ready gauge not 1 after recovery")
	}
	if v, _ := val(`stmkvd_durability_state{state="starting"}`); v != 0 {
		t.Fatal("starting gauge still 1 after recovery")
	}
}

// TestMetricsWAL checks the durable path fills the WAL flush/batch
// histograms and counters.
func TestMetricsWAL(t *testing.T) {
	s, ts := newTestServer(t, Config{
		SpaceWords: 1 << 18, Shards: 4, Buckets: 8, Snapshots: true,
		Durability: DurabilityGroup, WALDir: t.TempDir(),
	})
	c := ts.Client()
	waitReady(t, s)
	for i := 0; i < 8; i++ {
		var ins struct{ Inserted bool }
		doJSON(t, c, "PUT", ts.URL+"/kv/"+strconv.Itoa(i), "1", &ins)
	}
	_, val := scrape(t, c, ts.URL)
	if v, ok := val("stmkvd_wal_appends_total"); !ok || v < 8 {
		t.Fatalf("wal appends = %v (ok=%v), want >= 8", v, ok)
	}
	if v, ok := val("stmkvd_wal_flush_seconds_count"); !ok || v < 1 {
		t.Fatalf("wal flush histogram count = %v (ok=%v), want >= 1", v, ok)
	}
	if v, ok := val("stmkvd_wal_batch_ops_count"); !ok || v < 1 {
		t.Fatalf("wal batch-size histogram count = %v (ok=%v), want >= 1", v, ok)
	}
}

// TestTxTraceEndpoint drives enough sampled traffic to fill the flight
// recorder and checks the dump's shape, the limit parameter, and the
// disabled form.
func TestTxTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{
		SpaceWords: 1 << 18, Shards: 4, Buckets: 8, TxTraceEvery: 1,
	})
	c := ts.Client()
	for i := 0; i < 16; i++ {
		var ins struct{ Inserted bool }
		doJSON(t, c, "PUT", ts.URL+"/kv/"+strconv.Itoa(i), "7", &ins)
	}

	var dump struct {
		Enabled     bool   `json:"enabled"`
		SampleEvery uint64 `json:"sample_every"`
		Recorded    uint64 `json:"recorded"`
		Events      []struct {
			Seq   uint64 `json:"seq"`
			Kind  string `json:"kind"`
			Locks uint64 `json:"locks"`
		} `json:"events"`
	}
	if code := doJSON(t, c, "GET", ts.URL+"/debug/txtrace", "", &dump); code != 200 {
		t.Fatalf("txtrace status %d", code)
	}
	if !dump.Enabled || dump.SampleEvery != 1 {
		t.Fatalf("enabled=%v every=%d, want true/1", dump.Enabled, dump.SampleEvery)
	}
	if len(dump.Events) == 0 || dump.Recorded == 0 {
		t.Fatal("flight recorder dumped no events under every=1 sampling")
	}
	commits := 0
	for _, e := range dump.Events {
		if e.Kind == "commit" {
			commits++
		}
		if e.Locks == 0 {
			t.Fatalf("event %d missing TM geometry", e.Seq)
		}
	}
	if commits == 0 {
		t.Fatal("no commit events in trace")
	}

	var limited struct {
		Events []json.RawMessage `json:"events"`
	}
	doJSON(t, c, "GET", ts.URL+"/debug/txtrace?limit=3", "", &limited)
	if len(limited.Events) != 3 {
		t.Fatalf("limit=3 returned %d events", len(limited.Events))
	}
	if code := doJSON(t, c, "GET", ts.URL+"/debug/txtrace?limit=0", "", nil); code != http.StatusBadRequest {
		t.Fatalf("limit=0: status %d, want 400", code)
	}

	// TxTraceEvery < 0 disables the recorder; the endpoint still answers.
	s2, ts2 := newTestServer(t, Config{
		SpaceWords: 1 << 18, Shards: 4, Buckets: 8, TxTraceEvery: -1,
	})
	var off struct {
		Enabled bool `json:"enabled"`
	}
	doJSON(t, ts2.Client(), "GET", ts2.URL+"/debug/txtrace", "", &off)
	if off.Enabled {
		t.Fatal("recorder reported enabled with TxTraceEvery=-1")
	}
	if s2.TxTrace(0) != nil {
		t.Fatal("TxTrace() non-nil with the recorder disabled")
	}
}
