package kvserver

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"

	"tinystm/internal/kvclient"
	"tinystm/internal/kvproto"
)

// capturingListener records accepted connections so tests can sever them
// under a live client.
type capturingListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *capturingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *capturingListener) severAll() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
	l.conns = nil
}

// protoHarness bundles a running server, its binary listener and a
// connected client. Everything shuts down with the test.
type protoHarness struct {
	srv  *Server
	c    *kvclient.Client
	addr string
	lis  *capturingListener
}

func startProto(t *testing.T, cfg Config) *protoHarness {
	t.Helper()
	if cfg.SpaceWords == 0 {
		cfg.SpaceWords = 1 << 16
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis := &capturingListener{Listener: raw}
	t.Cleanup(func() { lis.Close() })
	go srv.ServeProto(lis)
	c := kvclient.New(raw.Addr().String(), kvclient.Options{})
	t.Cleanup(c.Close)
	return &protoHarness{srv: srv, c: c, addr: raw.Addr().String(), lis: lis}
}

func TestProtoOps(t *testing.T) {
	c := startProto(t, Config{Snapshots: true}).c

	if _, found, err := c.Get(1); err != nil || found {
		t.Fatalf("Get on empty store = (%v, %v)", found, err)
	}
	if ins, err := c.Put(1, 10); err != nil || !ins {
		t.Fatalf("first Put = (%v, %v), want inserted", ins, err)
	}
	if ins, err := c.Put(1, 11); err != nil || ins {
		t.Fatalf("second Put = (%v, %v), want update", ins, err)
	}
	if val, found, err := c.Get(1); err != nil || !found || val != 11 {
		t.Fatalf("Get = (%d, %v, %v), want (11, true)", val, found, err)
	}
	if ok, err := c.CAS(1, 11, 12); err != nil || !ok {
		t.Fatalf("CAS(11->12) = (%v, %v), want ok", ok, err)
	}
	if ok, err := c.CAS(1, 11, 13); err != nil || ok {
		t.Fatalf("stale CAS = (%v, %v), want refused", ok, err)
	}
	if val, err := c.Add(1, 8); err != nil || val != 20 {
		t.Fatalf("Add = (%d, %v), want 20", val, err)
	}
	if val, err := c.Add(7, 5); err != nil || val != 5 {
		t.Fatalf("Add on missing key = (%d, %v), want 5", val, err)
	}
	if found, err := c.Delete(7); err != nil || !found {
		t.Fatalf("Delete = (%v, %v), want found", found, err)
	}
	if found, err := c.Delete(7); err != nil || found {
		t.Fatalf("second Delete = (%v, %v), want missing", found, err)
	}

	res, err := c.Batch([]kvproto.BatchOp{
		{Op: kvproto.OpPut, Key: 2, Val: 100},
		{Op: kvproto.OpGet, Key: 1},
		{Op: kvproto.OpAdd, Key: 2, Val: 1},
		{Op: kvproto.OpCAS, Key: 2, Old: 101, Val: 102},
		{Op: kvproto.OpDelete, Key: 99},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []kvproto.BatchResult{
		{OK: true},
		{Val: 20, Found: true},
		{Val: 101, OK: true},
		{OK: true},
		{},
	}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("batch result %d = %+v, want %+v", i, res[i], want[i])
		}
	}

	pairs, total, snapshot, err := c.Scan(0)
	if err != nil || total != 2 || len(pairs) != 2 {
		t.Fatalf("Scan = (%d pairs, total %d, %v)", len(pairs), total, err)
	}
	if !snapshot {
		t.Fatal("Scan did not run as a snapshot on a Snapshots server")
	}
	pairs, _, _, err = c.Scan(1)
	if err != nil || len(pairs) != 1 {
		t.Fatalf("limited Scan = (%d pairs, %v), want 1", len(pairs), err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys != 2 || st.Commits == 0 {
		t.Fatalf("Stats = %+v, want 2 keys and some commits", st)
	}

	if _, err := c.Batch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// TestProtoPipelining floods one connection from many goroutines and
// checks every op lands: out-of-order completion with id matching is the
// protocol's core claim.
func TestProtoPipelining(t *testing.T) {
	h := startProto(t, Config{Snapshots: true})
	srv, c := h.srv, h.c

	const workers, opsEach = 16, 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				key := uint64(w)<<32 | uint64(i)
				if _, err := c.Add(key, 1); err != nil {
					errs <- err
					return
				}
				val, found, err := c.Get(key)
				if err != nil || !found || val != 1 {
					errs <- errors.New("read-your-write failed over the pipeline")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if n := srv.Store().Len(); n != workers*opsEach {
		t.Fatalf("store has %d keys, want %d", n, workers*opsEach)
	}
	if got := srv.proto.errOps.Load(); got != 0 {
		t.Fatalf("%d protocol-level errors during clean pipelined load", got)
	}
}

// TestProtoAdmissionGate checks update ops flow through the gate: with
// width 1 the ops all land (the gate bounds concurrency, never refuses)
// and the waited counter shows queueing happened.
func TestProtoAdmissionGate(t *testing.T) {
	h := startProto(t, Config{Snapshots: true, AdmissionWidth: 1})
	srv, c := h.srv, h.c

	const workers, opsEach = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				if _, err := c.Add(1, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if val, _, err := c.Get(1); err != nil || val != workers*opsEach {
		t.Fatalf("counter = (%d, %v), want %d", val, err, workers*opsEach)
	}
	width, _, admitted, _ := srv.gate.Stats()
	if width != 1 || admitted != workers*opsEach {
		t.Fatalf("gate saw (width %d, admitted %d), want (1, %d)", width, admitted, workers*opsEach)
	}
}

// TestProtoMalformedPayload sends garbage in a valid frame: the server
// answers StatusError with the echoed id, then drops the connection.
func TestProtoMalformedPayload(t *testing.T) {
	h := startProto(t, Config{})
	if _, err := h.c.Put(1, 1); err != nil {
		t.Fatal(err)
	}

	// Raw connection: a well-framed payload with an invalid op byte.
	conn, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := binary.LittleEndian.AppendUint64(nil, 77)
	payload = append(payload, 0xEE)
	frame, err := kvproto.AppendFrame(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	got, err := kvproto.ReadFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := kvproto.DecodeResponse(got)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 77 || resp.Status != kvproto.StatusError {
		t.Fatalf("malformed payload answered (id %d, %v), want (77, error)", resp.ID, resp.Status)
	}
	// The connection must be closed after the error.
	if _, err := kvproto.ReadFrame(conn, nil); err == nil {
		t.Fatal("connection survived a malformed payload")
	}
	if h.srv.proto.badFrames.Load() == 0 {
		t.Fatal("bad frame not counted")
	}
}

// TestProtoFrameDesync sends plain HTTP at the binary port: the server
// must drop the connection without answering.
func TestProtoFrameDesync(t *testing.T) {
	h := startProto(t, Config{})
	conn, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /kv/1 HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// The server must drop the connection without answering a byte; the
	// close may surface as EOF or a reset (unread request bytes), but
	// never as data.
	n, err := conn.Read(make([]byte, 1))
	if err == nil || n > 0 {
		t.Fatalf("server answered an HTTP request on the binary port (n=%d, err=%v)", n, err)
	}
}

// TestProtoClientRedial kills the connection under the client and checks
// the next call dials fresh and succeeds.
func TestProtoClientRedial(t *testing.T) {
	h := startProto(t, Config{})
	c := h.c
	if _, err := c.Put(5, 50); err != nil {
		t.Fatal(err)
	}
	// Nuke every live server-side connection; in-flight is empty so the
	// client only notices on its next call, which redials.
	h.lis.severAll()
	deadline := 0
	for {
		if _, _, err := c.Get(5); err == nil {
			break
		}
		if deadline++; deadline > 100 {
			t.Fatal("client never recovered from a dropped connection")
		}
	}
	if val, found, err := c.Get(5); err != nil || !found || val != 50 {
		t.Fatalf("post-redial Get = (%d, %v, %v), want (50, true)", val, found, err)
	}
}
