package kvserver

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tinystm/internal/kvstore"
	"tinystm/internal/txn"
	"tinystm/internal/wal"
)

// Durability ack modes.
const (
	// DurabilityOff runs without a write-ahead log: state dies with the
	// process (the pre-WAL behaviour).
	DurabilityOff = "off"
	// DurabilityAsync logs every commit but acks before the log reaches
	// stable storage: a crash loses at most the unflushed tail.
	DurabilityAsync = "async"
	// DurabilityGroup acks a mutating request only after its commit's
	// redo records are fsynced; the flusher batches concurrent commits
	// into one fsync (group commit).
	DurabilityGroup = "group"
)

// ParseDurability validates a -durability flag value.
func ParseDurability(s string) (string, error) {
	switch s {
	case "", DurabilityOff:
		return DurabilityOff, nil
	case DurabilityAsync, DurabilityGroup:
		return s, nil
	default:
		return "", fmt.Errorf("kvserver: unknown durability mode %q (off, async, group)", s)
	}
}

// Server lifecycle states. A durable server boots in stateStarting while
// a background goroutine replays the WAL; it serves data traffic only
// after flipping to stateReady. A WAL write/fsync failure flips it to
// stateDegraded — committed memory keeps serving reads, but mutations
// are refused because their durability can no longer be promised.
// Unrecoverable recovery damage (mid-log corruption) parks it in
// stateFailed: only health and stats endpoints answer, so an operator
// can see why.
const (
	stateStarting int32 = iota
	stateReady
	stateDegraded
	stateFailed
)

func stateName(st int32) string {
	switch st {
	case stateStarting:
		return "starting"
	case stateReady:
		return "ready"
	case stateDegraded:
		return "degraded"
	case stateFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// durability bundles the server's WAL machinery.
type durability struct {
	mode string
	fs   wal.FS
	dir  string

	//stm:allow-atomic WAL recovery state machine; durability I/O is outside the STM
	state atomic.Int32
	log   *wal.Log

	// recDone closes when the recovery goroutine finishes (either into
	// stateReady or stateFailed); mu guards the error/stat fields below.
	recDone chan struct{}

	//stm:allow-atomic guards recovery error/stat fields written by the recovery goroutine
	mu         sync.Mutex
	recErr     error
	recStats   wal.ReplayStats
	degradeErr error

	// Background checkpointer.
	ckptStop    chan struct{}
	ckptWG      sync.WaitGroup
	nextCkpt    uint64
	ckptCount   uint64
	ckptLastErr error
}

// walLog returns the open log, or nil before recovery finishes (or when
// durability is off/failed).
func (d *durability) walLog() *wal.Log {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log
}

// walSink adapts the log's tickets to the store's DurabilitySink.
type walSink struct{ log *wal.Log }

func (ws walSink) WaitDurable(t txn.DurableTicket) error { return t.(*wal.Pending).Wait() }

// startDurability launches WAL recovery in the background so New returns
// immediately and /healthz answers while a large log replays; /readyz
// reports 503 until the flip to ready. Returns without starting anything
// when durability is off.
func (s *Server) startDurability() {
	d := s.dur
	if d.mode == DurabilityOff {
		d.state.Store(stateReady)
		close(d.recDone)
		return
	}
	go s.recover()
}

// recover is the boot sequence of a durable server:
//
//  1. Replay: newest valid checkpoint + every segment, fold into state.
//  2. Load the folded state into the store (durability still off, so
//     loading does not re-log the records).
//  3. Open the log on a fresh segment, write a BOOT CHECKPOINT of the
//     recovered state, then drop every pre-boot segment and checkpoint.
//     After this the on-disk era is entirely this process's: recovery
//     never has to order this boot's (epoch, ts) positions against a
//     previous incarnation's clock.
//  4. Attach the redo hook and the store's durability mode, then flip to
//     ready. Only now can traffic generate log records.
//
// Any error before ready parks the server in stateFailed with the cause:
// serving writes that recovery may have dropped would be data loss.
func (s *Server) recover() {
	d := s.dur
	fail := func(err error) {
		d.mu.Lock()
		d.recErr = err
		d.mu.Unlock()
		d.state.Store(stateFailed)
		close(d.recDone)
	}

	pairs, stats, err := wal.Replay(d.fs, d.dir)
	if err != nil {
		fail(err)
		return
	}
	d.mu.Lock()
	d.recStats = stats
	d.mu.Unlock()

	s.store.Load(pairs)

	if s.cfg.recoveryGate != nil {
		// Test hook: hold the server in stateStarting until released so
		// readiness behaviour is observable deterministically.
		<-s.cfg.recoveryGate
	}

	log, err := wal.Open(wal.Config{
		Dir:          d.dir,
		FS:           d.fs,
		SegmentBytes: s.cfg.WALSegmentBytes,
		BatchDelay:   s.cfg.WALBatch,
		OnError:      s.degrade,
		FlushNs:      s.met.walFlushNs,
		BatchOps:     s.met.walBatchOps,
	})
	if err != nil {
		fail(err)
		return
	}
	d.mu.Lock()
	d.log = log
	d.mu.Unlock()

	bootCkpt := stats.MaxCheckpointIndex + 1
	if err := wal.WriteCheckpoint(d.fs, d.dir, bootCkpt, 0, 0, pairs); err != nil {
		log.Close()
		fail(fmt.Errorf("kvserver: boot checkpoint: %w", err))
		return
	}
	if err := log.DropSegmentsBefore(log.Stats().Segment); err != nil {
		log.Close()
		fail(fmt.Errorf("kvserver: drop pre-boot segments: %w", err))
		return
	}
	if err := wal.RemoveCheckpointsBefore(d.fs, d.dir, bootCkpt); err != nil {
		log.Close()
		fail(fmt.Errorf("kvserver: drop pre-boot checkpoints: %w", err))
		return
	}
	d.nextCkpt = bootCkpt + 1

	var sink kvstore.DurabilitySink
	if d.mode == DurabilityGroup {
		sink = walSink{log: log}
	}
	if err := s.store.EnableDurability(sink); err != nil {
		log.Close()
		fail(err)
		return
	}
	s.tm.SetRedoHook(func(epoch, ts uint64, ops []txn.RedoOp) txn.DurableTicket {
		return log.Append(epoch, ts, ops)
	})

	// The checkpointer must exist before recDone closes: closeDurability
	// waits on recDone and then tears it down, so starting it afterwards
	// could leak it across a racing Close.
	if s.cfg.CheckpointEvery > 0 {
		d.ckptStop = make(chan struct{})
		d.ckptWG.Add(1)
		go s.checkpointLoop()
	}

	d.state.Store(stateReady)
	close(d.recDone)
}

// degrade flips the server into sticky read-only mode; wired as the
// log's OnError callback (fires once).
func (s *Server) degrade(err error) {
	d := s.dur
	d.mu.Lock()
	d.degradeErr = err
	d.mu.Unlock()
	d.state.CompareAndSwap(stateReady, stateDegraded)
}

// RecoveryWait blocks until WAL recovery finishes and returns its error
// (nil when the server reached ready). With durability off it returns
// immediately.
func (s *Server) RecoveryWait() error {
	<-s.dur.recDone
	s.dur.mu.Lock()
	defer s.dur.mu.Unlock()
	return s.dur.recErr
}

// State reports the lifecycle state name (starting, ready, degraded,
// failed).
func (s *Server) State() string { return stateName(s.dur.state.Load()) }

func (s *Server) checkpointLoop() {
	d := s.dur
	defer d.ckptWG.Done()
	ticker := time.NewTicker(s.cfg.CheckpointEvery)
	defer ticker.Stop()
	for {
		select {
		case <-d.ckptStop:
			return
		case <-ticker.C:
			// Failures are recorded for /stats and retried next tick: a
			// missed checkpoint only delays truncation, it loses nothing.
			err := s.Checkpoint()
			d.mu.Lock()
			d.ckptLastErr = err
			d.mu.Unlock()
		}
	}
}

// Checkpoint takes one snapshot checkpoint and truncates the log prefix
// it covers:
//
//  1. Rotate the log. Everything staged so far is now durable in
//     segments below the returned index.
//  2. Snapshot the store. The scan starts after those commits published,
//     so its snapshot timestamp covers every record in the sealed
//     prefix (later records may also be included — replay is idempotent
//     over them).
//  3. Write the checkpoint durably, THEN drop the sealed segments, then
//     the now-superseded older checkpoints. A crash between any two
//     steps leaves extra files, never missing state.
//
// Stores without a consistent snapshot scan (snapshot mode off) skip
// checkpointing: the log then grows without truncation but recovery
// stays correct.
func (s *Server) Checkpoint() error {
	d := s.dur
	d.mu.Lock()
	log := d.log
	d.mu.Unlock()
	if log == nil {
		return fmt.Errorf("kvserver: no write-ahead log")
	}
	segIdx, err := log.Rotate()
	if err != nil {
		return err
	}
	pairs, epoch, ts, ok := s.store.CheckpointScan()
	if !ok {
		return fmt.Errorf("kvserver: store cannot take a consistent snapshot (snapshots disabled); skipping checkpoint")
	}
	d.mu.Lock()
	idx := d.nextCkpt
	d.nextCkpt++
	d.mu.Unlock()
	if err := wal.WriteCheckpoint(d.fs, d.dir, idx, epoch, ts, pairs); err != nil {
		return err
	}
	if err := log.DropSegmentsBefore(segIdx); err != nil {
		return err
	}
	if err := wal.RemoveCheckpointsBefore(d.fs, d.dir, idx); err != nil {
		return err
	}
	d.mu.Lock()
	d.ckptCount++
	d.mu.Unlock()
	return nil
}

// closeDurability tears down the WAL half of Close: stop checkpointing,
// detach the redo hook so no new records are staged, then close the log
// (final drain). Requests still in flight may see their tickets resolve
// with wal.ErrLogClosed and answer 503; the server is shutting down.
func (s *Server) closeDurability() {
	d := s.dur
	if d.mode == DurabilityOff {
		return
	}
	<-d.recDone
	if d.ckptStop != nil {
		close(d.ckptStop)
		d.ckptWG.Wait()
	}
	s.tm.SetRedoHook(nil)
	if d.log != nil {
		d.log.Close()
	}
}

// durabilityStats builds the /stats durability section.
func (s *Server) durabilityStats(redoRecords uint64) map[string]any {
	d := s.dur
	out := map[string]any{
		"mode":  d.mode,
		"state": s.State(),
	}
	if d.mode == DurabilityOff {
		return out
	}
	d.mu.Lock()
	recErr, recStats := d.recErr, d.recStats
	degradeErr := d.degradeErr
	ckptCount, ckptLastErr := d.ckptCount, d.ckptLastErr
	log := d.log
	d.mu.Unlock()
	rec := map[string]any{
		"checkpoint_found":    recStats.CheckpointFound,
		"checkpoint_pairs":    recStats.CheckpointPairs,
		"checkpoints_skipped": recStats.CheckpointsSkipped,
		"segments":            recStats.Segments,
		"records":             recStats.Records,
		"ops":                 recStats.Ops,
		"torn_bytes":          recStats.TornBytes,
	}
	if recErr != nil {
		rec["error"] = recErr.Error()
	}
	out["recovery"] = rec
	out["redo_records"] = redoRecords
	if degradeErr != nil {
		out["degraded_error"] = degradeErr.Error()
	}
	ckpt := map[string]any{"count": ckptCount}
	if ckptLastErr != nil {
		ckpt["last_error"] = ckptLastErr.Error()
	}
	out["checkpoints"] = ckpt
	if log != nil {
		ls := log.Stats()
		out["wal"] = map[string]any{
			"appends":   ls.Appends,
			"batches":   ls.Batches,
			"syncs":     ls.Syncs,
			"rotations": ls.Rotations,
			"segment":   ls.Segment,
			"failed":    ls.Failed,
		}
	}
	return out
}
