package kvserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tinystm/internal/cm"
	"tinystm/internal/core"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func doJSON(t *testing.T, client *http.Client, method, url string, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

func TestEndpointsRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{SpaceWords: 1 << 18, Shards: 4, Buckets: 8})
	c := ts.Client()

	// Put, get.
	var ins struct{ Inserted bool }
	if code := doJSON(t, c, "PUT", ts.URL+"/kv/7", "123", &ins); code != 200 || !ins.Inserted {
		t.Fatalf("PUT fresh: code=%d inserted=%v", code, ins.Inserted)
	}
	var got struct{ Key, Val uint64 }
	if code := doJSON(t, c, "GET", ts.URL+"/kv/7", "", &got); code != 200 || got.Val != 123 {
		t.Fatalf("GET: code=%d val=%d", code, got.Val)
	}
	// Overwrite is not an insert.
	if doJSON(t, c, "PUT", ts.URL+"/kv/7", "124", &ins); ins.Inserted {
		t.Fatal("overwrite reported inserted")
	}
	// CAS success and failure.
	var cas struct{ OK bool }
	doJSON(t, c, "POST", ts.URL+"/kv/7/cas", `{"old":124,"new":200}`, &cas)
	if !cas.OK {
		t.Fatal("CAS with correct old failed")
	}
	doJSON(t, c, "POST", ts.URL+"/kv/7/cas", `{"old":999,"new":1}`, &cas)
	if cas.OK {
		t.Fatal("CAS with stale old succeeded")
	}
	// Add.
	var add struct{ Val uint64 }
	doJSON(t, c, "POST", ts.URL+"/kv/7/add", `{"delta":5}`, &add)
	if add.Val != 205 {
		t.Fatalf("Add: val=%d want 205", add.Val)
	}
	// Batch: atomic multi-key.
	var batch struct {
		Results []struct {
			Val   uint64
			Found bool
			OK    bool
		}
	}
	doJSON(t, c, "POST", ts.URL+"/batch",
		`{"ops":[{"op":"put","key":1,"val":10},{"op":"get","key":1},{"op":"add","key":2,"val":3},{"op":"get","key":404}]}`,
		&batch)
	if len(batch.Results) != 4 || !batch.Results[0].OK || batch.Results[1].Val != 10 ||
		batch.Results[2].Val != 3 || batch.Results[3].Found {
		t.Fatalf("batch results: %+v", batch.Results)
	}
	// Delete and 404s.
	if code := doJSON(t, c, "DELETE", ts.URL+"/kv/7", "", nil); code != 200 {
		t.Fatalf("DELETE present: %d", code)
	}
	if code := doJSON(t, c, "GET", ts.URL+"/kv/7", "", nil); code != 404 {
		t.Fatalf("GET deleted: %d", code)
	}
	if code := doJSON(t, c, "DELETE", ts.URL+"/kv/7", "", nil); code != 404 {
		t.Fatalf("DELETE absent: %d", code)
	}
	// Bad inputs.
	if code := doJSON(t, c, "GET", ts.URL+"/kv/notanumber", "", nil); code != 400 {
		t.Fatalf("bad key: %d", code)
	}
	if code := doJSON(t, c, "POST", ts.URL+"/batch", `{"ops":[{"op":"zap","key":1}]}`, nil); code != 400 {
		t.Fatalf("bad batch op: %d", code)
	}
	if code := doJSON(t, c, "POST", ts.URL+"/batch", `{"ops":[]}`, nil); code != 400 {
		t.Fatalf("empty batch: %d", code)
	}
	// Stats endpoint reports the store size.
	var stats struct {
		Keys    uint64
		Commits uint64
		Params  struct{ Locks uint64 }
	}
	doJSON(t, c, "GET", ts.URL+"/stats", "", &stats)
	if stats.Keys != 2 || stats.Commits == 0 || stats.Params.Locks == 0 {
		t.Fatalf("stats: %+v", stats)
	}
	// Tuning endpoint without autotune.
	var tun struct{ Enabled bool }
	doJSON(t, c, "GET", ts.URL+"/tuning", "", &tun)
	if tun.Enabled {
		t.Fatal("tuning reported enabled without autotune")
	}
}

// TestAutotuneReconfiguresUnderTraffic is the satellite requirement: a
// tuning.Runtime-attached server must actually reconfigure the live TM
// while synthetic HTTP traffic flows. Short periods make the first tuning
// decision land within milliseconds of traffic starting.
func TestAutotuneReconfiguresUnderTraffic(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		SpaceWords: 1 << 18, Shards: 4, Buckets: 8,
		Autotune: true,
		Period:   5 * time.Millisecond,
		Samples:  1,
		Geometry: core.Params{Locks: 1 << 8, Shifts: 0, Hier: 1},
		Seed:     42,
	})
	c := ts.Client()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			n := uint64(id)
			for !stop.Load() {
				key := n % 256
				doJSON(t, c, "PUT", fmt.Sprintf("%s/kv/%d", ts.URL, key), "1", nil)
				doJSON(t, c, "GET", fmt.Sprintf("%s/kv/%d", ts.URL, key), "", nil)
				n++
			}
		}(i)
	}
	defer func() {
		stop.Store(true)
		wg.Wait()
	}()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if srv.TM().Stats().Reconfigs >= 1 {
			// The /tuning endpoint must agree.
			var tun struct {
				Enabled          bool
				Reconfigurations int
				ReconfigsTotal   uint64 `json:"reconfigs_total"`
				Events           []json.RawMessage
			}
			// Events may trail the Reconfigure by one trace append; poll briefly.
			for time.Now().Before(deadline) {
				doJSON(t, c, "GET", ts.URL+"/tuning", "", &tun)
				if tun.Reconfigurations >= 1 {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			if !tun.Enabled || tun.ReconfigsTotal < 1 || tun.Reconfigurations < 1 || len(tun.Events) == 0 {
				t.Fatalf("/tuning disagrees with TM: %+v", tun)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no reconfiguration within 10s of synthetic traffic")
}

// TestServerCloseReleasesDescriptors: handler churn must not leak TM
// descriptor slots, and Close must return every pooled descriptor.
func TestServerCloseReleasesDescriptors(t *testing.T) {
	srv, ts := newTestServer(t, Config{SpaceWords: 1 << 18, Shards: 2, Buckets: 8})
	c := ts.Client()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for n := 0; n < 500; n++ {
				doJSON(t, c, "PUT", fmt.Sprintf("%s/kv/%d", ts.URL, n%64), "9", nil)
			}
		}(i)
	}
	wg.Wait()
	minted, _ := srv.TM().DescriptorCounts()
	if minted > 64 {
		t.Fatalf("server minted %d descriptors for 8 concurrent clients", minted)
	}
	srv.Close()
	minted, free := srv.TM().DescriptorCounts()
	if minted != free {
		t.Fatalf("descriptors leaked at shutdown: minted=%d free=%d", minted, free)
	}
}

func TestBatchTooLargeRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{SpaceWords: 1 << 16, Shards: 2, Buckets: 8})
	var buf bytes.Buffer
	buf.WriteString(`{"ops":[`)
	for i := 0; i <= maxBatchOps; i++ {
		if i > 0 {
			buf.WriteString(",")
		}
		fmt.Fprintf(&buf, `{"op":"get","key":%d}`, i)
	}
	buf.WriteString(`]}`)
	resp, err := ts.Client().Post(ts.URL+"/batch", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: code=%d", resp.StatusCode)
	}
}

// TestArenaExhaustionReturns507 fills a tiny arena until Alloc fails and
// checks the server answers 507 for the failing write while staying alive
// for subsequent requests.
func TestArenaExhaustionReturns507(t *testing.T) {
	_, ts := newTestServer(t, Config{SpaceWords: 1 << 10, Shards: 1, Buckets: 4})
	c := ts.Client()
	doJSON(t, c, "PUT", ts.URL+"/kv/0", "1", nil)

	saw507 := false
	for k := uint64(1); k < 1<<10; k++ {
		code := doJSON(t, c, "PUT", fmt.Sprintf("%s/kv/%d", ts.URL, k), "1", nil)
		if code == http.StatusInsufficientStorage {
			saw507 = true
			break
		}
		if code != http.StatusOK {
			t.Fatalf("unexpected code %d before exhaustion", code)
		}
	}
	if !saw507 {
		t.Fatal("arena never exhausted")
	}
	// The server survives: reads and health checks still work.
	if code := doJSON(t, c, "GET", ts.URL+"/kv/0", "", nil); code != http.StatusOK {
		t.Fatalf("server unhealthy after exhaustion: GET -> %d", code)
	}
	if code := doJSON(t, c, "GET", ts.URL+"/healthz", "", nil); code != http.StatusOK {
		t.Fatalf("healthz after exhaustion -> %d", code)
	}
}

// The /stats and /tuning payloads must report the live contention-
// management policy and its switch counts (the policy analogue of the
// reconfiguration counters).
func TestTuningReportsCMPolicy(t *testing.T) {
	// A one-hour period keeps the live controller from ever completing a
	// tuning period during the test: every cm/switch-count assertion
	// below would otherwise race against its first decision (a calm
	// first period legitimately de-escalates).
	srv, ts := newTestServer(t, Config{
		SpaceWords: 1 << 18, Shards: 2, Buckets: 8,
		Autotune: true, TuneCM: true,
		CM:      cm.Karma,
		Period:  time.Hour,
		Samples: 1,
		Seed:    42,
	})
	c := ts.Client()

	var stats struct {
		CM         string `json:"cm"`
		CMSwitches uint64 `json:"cm_switches"`
	}
	doJSON(t, c, "GET", ts.URL+"/stats", "", &stats)
	if stats.CM != "karma" || stats.CMSwitches != 0 {
		t.Fatalf("/stats cm = %q switches = %d, want karma, 0", stats.CM, stats.CMSwitches)
	}

	var tun struct {
		Enabled         bool   `json:"enabled"`
		CM              string `json:"cm"`
		CMTuning        bool   `json:"cm_tuning"`
		CMSwitches      int    `json:"cm_switches"`
		CMSwitchesTotal uint64 `json:"cm_switches_total"`
		Events          []struct {
			CM string `json:"cm"`
		} `json:"events"`
	}
	doJSON(t, c, "GET", ts.URL+"/tuning", "", &tun)
	if !tun.Enabled || !tun.CMTuning || tun.CM != "karma" {
		t.Fatalf("/tuning cm fields wrong: %+v", tun)
	}

	// A live switch (here applied directly, as the controller would via
	// SetCM) must show up in both payloads.
	if err := srv.TM().SetCM(cm.Backoff, cm.Knobs{}); err != nil {
		t.Fatal(err)
	}
	doJSON(t, c, "GET", ts.URL+"/stats", "", &stats)
	if stats.CM != "backoff" || stats.CMSwitches != 1 {
		t.Fatalf("/stats after switch: cm = %q switches = %d, want backoff, 1", stats.CM, stats.CMSwitches)
	}
	doJSON(t, c, "GET", ts.URL+"/tuning", "", &tun)
	if tun.CM != "backoff" || tun.CMSwitchesTotal != 1 {
		t.Fatalf("/tuning after switch: cm = %q total = %d, want backoff, 1", tun.CM, tun.CMSwitchesTotal)
	}

	// On a fast cadence, periods fire even when idle and their events
	// must carry the active policy name (a separate server: here the
	// controller is free to run and may legitimately switch policies, so
	// only the field's presence is asserted).
	_, fast := newTestServer(t, Config{
		SpaceWords: 1 << 18, Shards: 2, Buckets: 8,
		Autotune: true, TuneCM: true,
		CM:      cm.Karma,
		Period:  5 * time.Millisecond,
		Samples: 1,
		Seed:    42,
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		doJSON(t, fast.Client(), "GET", fast.URL+"/tuning", "", &tun)
		if len(tun.Events) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no tuning events within 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if tun.Events[0].CM == "" {
		t.Fatal("tuning events do not carry the active policy")
	}
}

// Without TuneCM the /tuning payload must say so and leave events
// unannotated.
func TestTuningWithoutCMController(t *testing.T) {
	_, ts := newTestServer(t, Config{
		SpaceWords: 1 << 18, Shards: 2, Buckets: 8,
		Autotune: true, Period: 5 * time.Millisecond, Samples: 1,
	})
	var tun struct {
		Enabled  bool `json:"enabled"`
		CMTuning bool `json:"cm_tuning"`
	}
	doJSON(t, ts.Client(), "GET", ts.URL+"/tuning", "", &tun)
	if !tun.Enabled || tun.CMTuning {
		t.Fatalf("cm_tuning = %v, want false", tun.CMTuning)
	}
}

func TestScanEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{SpaceWords: 1 << 18, Shards: 4, Buckets: 8, Snapshots: true})
	client := ts.Client()
	for k := 0; k < 50; k++ {
		if code := doJSON(t, client, "PUT", fmt.Sprintf("%s/kv/%d", ts.URL, k), fmt.Sprint(k*2), nil); code != http.StatusOK {
			t.Fatalf("PUT status %d", code)
		}
	}
	var out struct {
		Keys     uint64 `json:"keys"`
		Pairs    []struct{ Key, Val uint64 }
		Snapshot bool `json:"snapshot"`
	}
	if code := doJSON(t, client, "GET", ts.URL+"/scan", "", &out); code != http.StatusOK {
		t.Fatalf("GET /scan status %d", code)
	}
	if out.Keys != 50 || len(out.Pairs) != 50 || !out.Snapshot {
		t.Fatalf("scan = %d keys, %d pairs, snapshot=%v", out.Keys, len(out.Pairs), out.Snapshot)
	}
	seen := map[uint64]uint64{}
	for _, p := range out.Pairs {
		seen[p.Key] = p.Val
	}
	for k := uint64(0); k < 50; k++ {
		if seen[k] != k*2 {
			t.Fatalf("scan key %d = %d, want %d", k, seen[k], k*2)
		}
	}
	// limit caps pairs, not the walked-key count.
	if code := doJSON(t, client, "GET", ts.URL+"/scan?limit=7", "", &out); code != http.StatusOK {
		t.Fatalf("GET /scan?limit status %d", code)
	}
	if out.Keys != 50 || len(out.Pairs) != 7 {
		t.Fatalf("limited scan = %d keys, %d pairs, want 50/7", out.Keys, len(out.Pairs))
	}
	if code := doJSON(t, client, "GET", ts.URL+"/scan?limit=0", "", nil); code != http.StatusBadRequest {
		t.Fatalf("bad limit accepted: status %d", code)
	}
	// The scan must have run in snapshot mode (live reads counted).
	if st := s.TM().Stats(); st.SnapshotLiveReads == 0 {
		t.Fatal("/scan did not run as a snapshot transaction")
	}
}

func TestStatsReportsSnapshotCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{SpaceWords: 1 << 18, Shards: 4, Buckets: 8, Snapshots: true, SnapshotBudget: 128})
	client := ts.Client()
	doJSON(t, client, "PUT", ts.URL+"/kv/1", "10", nil)
	doJSON(t, client, "PUT", ts.URL+"/kv/1", "11", nil)
	// A scan runs in snapshot mode and registers with the sidecar.
	if code := doJSON(t, client, "GET", ts.URL+"/scan", "", nil); code != http.StatusOK {
		t.Fatalf("GET /scan status %d", code)
	}
	var st struct {
		Snapshots struct {
			Enabled       bool   `json:"enabled"`
			VersionBudget int    `json:"version_budget"`
			ReadsLive     uint64 `json:"reads_live"`
			AbortsTooOld  uint64 `json:"aborts_snapshot_too_old"`
		} `json:"snapshots"`
	}
	if code := doJSON(t, client, "GET", ts.URL+"/stats", "", &st); code != http.StatusOK {
		t.Fatalf("GET /stats status %d", code)
	}
	if !st.Snapshots.Enabled || st.Snapshots.VersionBudget != 128 {
		t.Fatalf("snapshot stats %+v", st.Snapshots)
	}
	if st.Snapshots.ReadsLive == 0 {
		t.Fatal("scan recorded no snapshot reads")
	}
	if st.Snapshots.AbortsTooOld != 0 {
		t.Fatalf("%d snapshot-too-old aborts in an uncontended test", st.Snapshots.AbortsTooOld)
	}
}

func TestScanWithoutSnapshotsFallsBack(t *testing.T) {
	_, ts := newTestServer(t, Config{SpaceWords: 1 << 18, Shards: 4, Buckets: 8})
	client := ts.Client()
	doJSON(t, client, "PUT", ts.URL+"/kv/5", "50", nil)
	var out struct {
		Keys     uint64 `json:"keys"`
		Snapshot bool   `json:"snapshot"`
	}
	if code := doJSON(t, client, "GET", ts.URL+"/scan", "", &out); code != http.StatusOK {
		t.Fatalf("GET /scan status %d", code)
	}
	if out.Keys != 1 || out.Snapshot {
		t.Fatalf("fallback scan = %d keys, snapshot=%v, want 1/false", out.Keys, out.Snapshot)
	}
}

func TestTuningReportsVersionBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{
		SpaceWords: 1 << 18, Shards: 4, Buckets: 8,
		Snapshots: true, SnapshotBudget: 256,
		Autotune: true, TuneSnapshots: true,
		Period: time.Hour, // the controller goroutine idles; we only read the summary
	})
	client := ts.Client()
	var out struct {
		SnapshotTuning bool `json:"snapshot_tuning"`
		VersionBudget  int  `json:"version_budget"`
		BudgetMoves    int  `json:"budget_moves"`
	}
	if code := doJSON(t, client, "GET", ts.URL+"/tuning", "", &out); code != http.StatusOK {
		t.Fatalf("GET /tuning status %d", code)
	}
	if !out.SnapshotTuning || out.VersionBudget != 256 || out.BudgetMoves != 0 {
		t.Fatalf("tuning summary %+v", out)
	}
}

func TestTuneSnapshotsRequiresSnapshots(t *testing.T) {
	s, ts := newTestServer(t, Config{
		SpaceWords: 1 << 18, Shards: 4, Buckets: 8,
		Snapshots: false, Autotune: true, TuneSnapshots: true,
		Period: time.Hour,
	})
	if s == nil {
		t.Fatal("server not built")
	}
	var out struct {
		SnapshotTuning bool `json:"snapshot_tuning"`
	}
	if code := doJSON(t, ts.Client(), "GET", ts.URL+"/tuning", "", &out); code != http.StatusOK {
		t.Fatalf("GET /tuning status %d", code)
	}
	if out.SnapshotTuning {
		t.Fatal("/tuning claims snapshot tuning with the sidecar disabled")
	}
}
