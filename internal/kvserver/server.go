// Package kvserver is the HTTP face of the STM-backed key-value store:
// the handler set cmd/stmkvd serves. Every request runs one (or, for
// batches, exactly one multi-key) transaction against a kvstore.Store,
// descriptors are borrowed from the store's pool per request, and an
// attached tuning.Runtime re-adapts the TM's lock-table geometry to the
// live traffic while the server runs.
//
// Endpoints:
//
//	GET    /kv/{key}          read one key            -> {"key":k,"val":v}
//	PUT    /kv/{key}          upsert (body: decimal)  -> {"inserted":bool}
//	DELETE /kv/{key}          remove                  -> {"deleted":true}
//	POST   /kv/{key}/cas      body {"old":o,"new":n}  -> {"ok":bool,...}
//	POST   /kv/{key}/add      body {"delta":d}        -> {"val":new}
//	POST   /batch             body {"ops":[...]}      -> {"results":[...]}
//	GET    /scan              full-table scan (one snapshot transaction)
//	                          ?limit=N caps pairs     -> {"keys":n,"pairs":[...]}
//	GET    /stats             TM counters + store size + durability state
//	GET    /tuning            live autotune trace
//	GET    /healthz           liveness (always 200 while the process runs)
//	GET    /readyz            readiness: 503 + Retry-After during WAL
//	                          replay, degraded read-only mode, or after a
//	                          failed recovery; 200 once serving normally
//
// Keys are decimal uint64 path segments; values are uint64. With
// Config.Durability set, mutating requests are written ahead to a
// commit-ordered log (see internal/wal) and, in group mode, acked only
// once durable; on boot the server replays the log in the background
// before flipping /readyz to 200.
package kvserver

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"net/http"
	"strconv"
	"time"

	"tinystm/internal/admission"
	"tinystm/internal/cm"
	"tinystm/internal/core"
	"tinystm/internal/kvstore"
	"tinystm/internal/mem"
	"tinystm/internal/resilience"
	"tinystm/internal/tuning"
	"tinystm/internal/wal"
)

// Config parameterizes a Server.
type Config struct {
	// SpaceWords sizes the transactional arena. Default 1<<22.
	SpaceWords int
	// Shards and Buckets shape the store (powers of two). Defaults 16
	// and 64.
	Shards, Buckets uint64
	// Design, Clock and Geometry configure the TM. A zero Geometry
	// defaults to the deliberately modest (2^8, 0, 1) so a fresh server
	// visibly adapts under load.
	Design   core.Design
	Clock    core.ClockStrategy
	Geometry core.Params
	// CM is the initial contention-management policy (default Suicide).
	CM cm.Kind
	// Snapshots attaches the MVCC sidecar: all-Get /batch requests, Len
	// and the /scan endpoint then run as wait-free snapshot transactions
	// instead of abort-prone classic read-only ones. On by default in
	// cmd/stmkvd.
	Snapshots bool
	// SnapshotBudget is the sidecar's initial per-shard version budget
	// (zero: the mvcc default). Requires Snapshots.
	SnapshotBudget int
	// Autotune attaches a tuning.Runtime (on by default in cmd/stmkvd).
	Autotune bool
	// TuneCM additionally enables the runtime's adaptive policy
	// controller: the conflict-resolution policy becomes a live tuning
	// dimension next to the lock-table geometry. Requires Autotune.
	TuneCM bool
	// TuneSnapshots additionally enables the runtime's version-budget
	// controller: the sidecar's retained-version budget becomes a live
	// tuning dimension, metered by snapshot-too-old aborts. Requires
	// Autotune and Snapshots.
	TuneSnapshots bool
	// AdmissionWidth puts a token-bucket gate of that many concurrent
	// update transactions in front of the store (both HTTP and binary
	// surfaces); 0 disables the gate. Reads are never gated.
	AdmissionWidth int
	// TuneAdmission additionally enables the runtime's admission
	// controller: the gate width becomes a live tuning dimension walked
	// from the observed abort ratio. Requires Autotune and
	// AdmissionWidth > 0.
	TuneAdmission bool
	// BrownoutSLO arms overload brownout: when the per-period request
	// p99 (measured by the tuning runtime from the latency histogram)
	// exceeds this, the server sheds request classes in cost order —
	// scans first, then writes, reads last — until p99 recovers. Zero
	// disables. Requires Autotune (the runtime is the ladder's stepper).
	BrownoutSLO time.Duration
	// Period, Samples, MinPeriodCommits and Bounds mirror
	// tuning.RuntimeConfig.
	Period           time.Duration
	Samples          int
	MinPeriodCommits uint64
	Bounds           tuning.Bounds
	// Seed drives the tuner's randomized move selection.
	Seed uint64
	// Now and After are the runtime's injectable clocks (tests).
	Now   func() time.Time
	After func(time.Duration) <-chan time.Time
	// Durability selects the write-ahead-log ack mode: "off" (default —
	// no log), "async" (logged, acked before fsync) or "group" (acked
	// only after the commit's records are fsynced; concurrent commits
	// share one fsync). Requires Snapshots for checkpoint truncation.
	Durability string
	// WALDir is the log/checkpoint directory; required unless off.
	WALDir string
	// WALBatch is the flusher's batch-accumulation delay (0: flush as
	// soon as records appear). Larger values trade ack latency for fewer
	// fsyncs.
	WALBatch time.Duration
	// WALSegmentBytes sets the segment rotation size (0: wal default).
	WALSegmentBytes int64
	// CheckpointEvery is the background snapshot-checkpoint period; 0
	// disables checkpointing (the log then grows without truncation).
	CheckpointEvery time.Duration
	// WALFS overrides the log's filesystem (fault-injection tests);
	// nil means the real OS.
	WALFS wal.FS
	// TxTraceEvery is the flight recorder's sampling rate: one atomic
	// block in N is traced. 0 picks the default (64); negative disables
	// the recorder entirely.
	TxTraceEvery int
	// recoveryGate, when set by a test, holds boot recovery open (the
	// server stays in the starting state) until the channel is closed.
	recoveryGate chan struct{}
}

func (c Config) withDefaults() Config {
	if c.SpaceWords == 0 {
		c.SpaceWords = 1 << 22
	}
	if c.Shards == 0 {
		c.Shards = 16
	}
	if c.Buckets == 0 {
		c.Buckets = 64
	}
	if c.Geometry == (core.Params{}) {
		c.Geometry = core.Params{Locks: 1 << 8, Shifts: 0, Hier: 1}
	}
	// Normalize: the budget controller cannot exist without the sidecar.
	// Folding the AND in here keeps every consumer — the runtime wiring
	// AND the /tuning report — on one effective value, so the endpoint
	// can never claim a tuning dimension that was silently disabled.
	if !c.Snapshots {
		c.TuneSnapshots = false
	}
	// Same normalization for the admission controller: no gate, nothing
	// to tune.
	if c.AdmissionWidth <= 0 {
		c.TuneAdmission = false
	}
	// Brownout needs the tuning runtime as its stepper: without Autotune
	// the ladder would be armed but frozen at off forever — normalize to
	// disabled so /stats never claims an overload defense that cannot
	// engage.
	if !c.Autotune {
		c.BrownoutSLO = 0
	}
	if c.Durability == "" {
		c.Durability = DurabilityOff
	}
	return c
}

// Server owns the TM, the store, (optionally) the tuning runtime and
// (optionally) the durability machinery.
type Server struct {
	cfg   Config
	tm    *core.TM
	store *kvstore.Store[*core.Tx]
	rt    *tuning.Runtime
	mux   *http.ServeMux
	start time.Time
	dur   *durability
	// gate is the update-admission token bucket, nil without
	// AdmissionWidth.
	gate *admission.Gate
	// met owns every instrument (histograms, registry, flight recorder,
	// shard heat); proto carries the binary listener's counters.
	met   *metrics
	proto protoStats
	// brown is the overload-shed ladder (nil without BrownoutSLO); shed
	// counts deadline and brownout refusals on both surfaces.
	brown *resilience.Brownout
	shed  shedStats
}

// validate rejects configurations the lower layers would panic on, so
// flag mistakes surface as clean errors from New.
func (c Config) validate() error {
	if c.SpaceWords < 1<<10 {
		return fmt.Errorf("kvserver: SpaceWords (%d) must be at least %d", c.SpaceWords, 1<<10)
	}
	if c.Shards == 0 || bits.OnesCount64(c.Shards) != 1 {
		return fmt.Errorf("kvserver: Shards (%d) must be a power of two", c.Shards)
	}
	if c.Buckets == 0 || bits.OnesCount64(c.Buckets) != 1 {
		return fmt.Errorf("kvserver: Buckets (%d) must be a power of two", c.Buckets)
	}
	if _, err := ParseDurability(c.Durability); err != nil {
		return err
	}
	if c.Durability != DurabilityOff && c.Durability != "" && c.WALDir == "" {
		return fmt.Errorf("kvserver: durability %q requires a WAL directory", c.Durability)
	}
	return nil
}

// New builds the TM, the store and the handler set; with cfg.Autotune it
// also starts the tuning runtime.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	tm, err := core.New(core.Config{
		Space:          mem.NewSpace(cfg.SpaceWords),
		Locks:          cfg.Geometry.Locks,
		Shifts:         cfg.Geometry.Shifts,
		Hier:           cfg.Geometry.Hier,
		Design:         cfg.Design,
		Clock:          cfg.Clock,
		CM:             cfg.CM,
		Snapshots:      cfg.Snapshots,
		SnapshotBudget: cfg.SnapshotBudget,
	})
	if err != nil {
		return nil, fmt.Errorf("kvserver: %w", err)
	}
	s := &Server{
		cfg:   cfg,
		tm:    tm,
		store: kvstore.NewStore[*core.Tx](tm, cfg.Shards, cfg.Buckets),
		start: time.Now(),
	}
	if cfg.AdmissionWidth > 0 {
		s.gate = admission.New(cfg.AdmissionWidth)
	}
	// Instruments before the tuning runtime: the runtime differences the
	// request-latency histogram per period to stamp p50/p99 onto its
	// events.
	s.met = newMetrics(s)
	tm.SetObs(s.met.tmObs)
	s.store.SetShardHeat(s.met.heat)
	if cfg.BrownoutSLO > 0 {
		s.brown = resilience.NewBrownout(resilience.BrownoutConfig{SLO: cfg.BrownoutSLO})
	}
	if cfg.Autotune {
		admCfg := tuning.AdmissionConfig{Enable: cfg.TuneAdmission}
		if cfg.TuneAdmission {
			admCfg.Gate = s.gate
		}
		s.rt = tuning.NewRuntime(tm, tuning.RuntimeConfig{
			Tuner:            tuning.Config{Initial: cfg.Geometry, Bounds: cfg.Bounds, Seed: cfg.Seed},
			Period:           cfg.Period,
			Samples:          cfg.Samples,
			MinPeriodCommits: cfg.MinPeriodCommits,
			CM:               tuning.CMConfig{Enable: cfg.TuneCM},
			Snapshot:         tuning.SnapshotConfig{Enable: cfg.TuneSnapshots},
			Admission:        admCfg,
			Brownout:         tuning.BrownoutConfig{Enable: s.brown != nil, Brown: s.brown},
			// A daemon tunes forever: keep only a bounded window of
			// events in memory (/tuning serves its tail).
			TraceCap: traceCap,
			Latency:  s.met.reqAll,
			Now:      cfg.Now,
			After:    cfg.After,
		})
		if err := s.rt.Start(); err != nil {
			s.store.Close()
			return nil, err
		}
	}
	s.dur = &durability{
		mode:    cfg.Durability,
		fs:      cfg.WALFS,
		dir:     cfg.WALDir,
		recDone: make(chan struct{}),
	}
	s.startDurability()
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// TM exposes the underlying STM (tests, stats).
func (s *Server) TM() *core.TM { return s.tm }

// Store exposes the key-value store.
func (s *Server) Store() *kvstore.Store[*core.Tx] { return s.store }

// Runtime returns the attached tuning runtime, nil without Autotune.
func (s *Server) Runtime() *tuning.Runtime { return s.rt }

// Close stops the checkpointer and the write-ahead log, then the tuning
// runtime, and releases every pooled descriptor back to the TM (the
// server-side half of the Tx.Release contract: a shut-down server leaks
// no descriptor slots).
func (s *Server) Close() {
	s.closeDurability()
	if s.rt != nil {
		s.rt.Stop()
	}
	s.store.Close()
}

// Handler returns the root handler: a lifecycle gate in front of the
// route mux, wrapped in a recover layer that converts arena exhaustion
// into 507 and a failed durability wait into 503 instead of tearing down
// the connection's goroutine. Any other panic is a real bug and is
// re-raised for net/http's connection-level recovery to log.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		dl, err := httpDeadline(r)
		if err != nil {
			http.Error(w, "bad "+resilience.TimeoutHeader+": "+err.Error(), http.StatusBadRequest)
			return
		}
		r = withDeadline(r, dl)
		if !s.admit(w, r) {
			return
		}
		defer func() {
			if rec := recover(); rec != nil {
				if rec == core.ErrSpaceExhausted {
					http.Error(w, core.ErrSpaceExhausted.Error(), http.StatusInsufficientStorage)
					return
				}
				if derr, ok := rec.(*kvstore.DurabilityError); ok {
					// The commit exists in memory but its log records
					// never reached disk: refuse the ack. The WAL's
					// OnError has already flipped the server degraded,
					// so this is a retry-later, like every other 503.
					s.unavailable(w, derr.Error())
					return
				}
				panic(rec)
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// admit applies the lifecycle gate. Health, readiness and observability
// endpoints always answer; everything else requires a ready server —
// except in degraded mode, where reads still serve (committed memory is
// intact) and only mutations are refused.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	switch r.URL.Path {
	case "/healthz", "/readyz", "/stats", "/tuning", "/metrics", "/debug/txtrace":
		return true
	}
	// Brownout sheds whole request classes at the door, before any
	// transaction runs or gate slot is waited on: refusal is the point.
	if class := classifyHTTP(r); s.brownSheds(class) {
		s.unavailable(w, brownoutMsg(class))
		return false
	}
	switch s.dur.state.Load() {
	case stateReady:
		return true
	case stateDegraded:
		if r.Method == http.MethodGet {
			return true
		}
		s.unavailable(w, "degraded: write-ahead log failed; serving reads only")
		return false
	case stateFailed:
		s.unavailable(w, "recovery failed; see /stats")
		return false
	default: // stateStarting
		s.unavailable(w, "recovering write-ahead log")
		return false
	}
}

// unavailable answers 503 with a Retry-After hint so pollers and load
// balancers back off politely.
func (s *Server) unavailable(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", "1")
	http.Error(w, msg, http.StatusServiceUnavailable)
}

func (s *Server) routes() {
	// Liveness and readiness are distinct on purpose: a server replaying
	// a large WAL, or degraded to read-only, is alive (don't restart it —
	// that only repeats the replay) but not ready (don't route writes to
	// it).
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if st := s.dur.state.Load(); st != stateReady {
			s.unavailable(w, stateName(st))
			return
		}
		fmt.Fprintln(w, "ready")
	})
	s.mux.HandleFunc("GET /kv/{key}", s.timed(mopGet, s.handleGet))
	s.mux.HandleFunc("PUT /kv/{key}", s.timed(mopPut, s.handlePut))
	s.mux.HandleFunc("DELETE /kv/{key}", s.timed(mopDelete, s.handleDelete))
	s.mux.HandleFunc("POST /kv/{key}/cas", s.timed(mopCAS, s.handleCAS))
	s.mux.HandleFunc("POST /kv/{key}/add", s.timed(mopAdd, s.handleAdd))
	s.mux.HandleFunc("POST /batch", s.timed(mopBatch, s.handleBatch))
	s.mux.HandleFunc("GET /scan", s.timed(mopScan, s.handleScan))
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /tuning", s.handleTuning)
	s.mux.Handle("GET /metrics", s.met.reg.Handler())
	s.mux.HandleFunc("GET /debug/txtrace", s.handleTxTrace)
}

// enterUpdate claims an update-admission slot (blocking at the door when
// the gate is full) and returns the release. A nil gate admits freely.
// Both surfaces — the HTTP handlers and the binary-protocol executor —
// pass every update transaction through here, so the tuned width governs
// the whole server.
func (s *Server) enterUpdate() func() {
	if s.gate == nil {
		return func() {}
	}
	t0 := time.Now()
	s.gate.Enter()
	s.met.admWaitNs.Record(uint64(time.Since(t0)))
	return s.gate.Exit
}

func pathKey(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	k, err := strconv.ParseUint(r.PathValue("key"), 10, 64)
	if err != nil {
		http.Error(w, "bad key: "+err.Error(), http.StatusBadRequest)
		return 0, false
	}
	return k, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	key, ok := pathKey(w, r)
	if !ok {
		return
	}
	val, found := s.store.Get(key)
	if !found {
		http.Error(w, "key not found", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"key": key, "val": val})
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	key, ok := pathKey(w, r)
	if !ok {
		return
	}
	var val uint64
	if _, err := fmt.Fscan(r.Body, &val); err != nil {
		http.Error(w, "bad value (want a decimal uint64 body): "+err.Error(), http.StatusBadRequest)
		return
	}
	release, ok := s.enterUpdateUntil(deadlineOf(r))
	if !ok {
		s.shedDeadlineHTTP(w, shedStageGate)
		return
	}
	defer release()
	inserted := s.store.Put(key, val)
	writeJSON(w, http.StatusOK, map[string]bool{"inserted": inserted})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	key, ok := pathKey(w, r)
	if !ok {
		return
	}
	release, ok := s.enterUpdateUntil(deadlineOf(r))
	if !ok {
		s.shedDeadlineHTTP(w, shedStageGate)
		return
	}
	defer release()
	if !s.store.Delete(key) {
		http.Error(w, "key not found", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"deleted": true})
}

func (s *Server) handleCAS(w http.ResponseWriter, r *http.Request) {
	key, ok := pathKey(w, r)
	if !ok {
		return
	}
	var req struct{ Old, New uint64 }
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
		return
	}
	release, ok := s.enterUpdateUntil(deadlineOf(r))
	if !ok {
		s.shedDeadlineHTTP(w, shedStageGate)
		return
	}
	defer release()
	swapped := s.store.CAS(key, req.Old, req.New)
	writeJSON(w, http.StatusOK, map[string]bool{"ok": swapped})
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	key, ok := pathKey(w, r)
	if !ok {
		return
	}
	var req struct{ Delta uint64 }
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
		return
	}
	release, ok := s.enterUpdateUntil(deadlineOf(r))
	if !ok {
		s.shedDeadlineHTTP(w, shedStageGate)
		return
	}
	defer release()
	val := s.store.Add(key, req.Delta)
	writeJSON(w, http.StatusOK, map[string]uint64{"val": val})
}

// wireOp is the JSON form of one batch operation.
type wireOp struct {
	Op  string `json:"op"`
	Key uint64 `json:"key"`
	Val uint64 `json:"val,omitempty"`
	Old uint64 `json:"old,omitempty"`
}

// wireResult is the JSON form of one batch result.
type wireResult struct {
	Val   uint64 `json:"val"`
	Found bool   `json:"found"`
	OK    bool   `json:"ok"`
}

// maxBatchOps bounds a single atomic batch: a giant batch is a giant
// transaction, and past a point it would conflict with everything and
// starve (the same reason the resize transaction is per-shard).
const maxBatchOps = 1024

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Ops []wireOp `json:"ops"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Ops) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	if len(req.Ops) > maxBatchOps {
		http.Error(w, fmt.Sprintf("batch exceeds %d ops", maxBatchOps), http.StatusRequestEntityTooLarge)
		return
	}
	ops := make([]kvstore.Op, len(req.Ops))
	for i, o := range req.Ops {
		kind, err := kvstore.ParseOpKind(o.Op)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ops[i] = kvstore.Op{Kind: kind, Key: o.Key, Val: o.Val, Old: o.Old}
	}
	// A batch is one multi-key transaction: check the budget right before
	// the expensive part, then again (for updates) at the gate.
	dl := deadlineOf(r)
	if expired(dl) {
		s.shedDeadlineHTTP(w, shedStageOp)
		return
	}
	if !readOnlyOps(ops) {
		release, ok := s.enterUpdateUntil(dl)
		if !ok {
			s.shedDeadlineHTTP(w, shedStageGate)
			return
		}
		defer release()
	}
	res := s.store.Apply(ops)
	out := make([]wireResult, len(res))
	for i, r := range res {
		out[i] = wireResult{Val: r.Val, Found: r.Found, OK: r.OK}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": out})
}

// readOnlyOps reports whether a batch is all Gets (and therefore runs as
// an ungated snapshot read, exactly like Apply's own read-only path).
func readOnlyOps(ops []kvstore.Op) bool {
	for _, op := range ops {
		if op.Kind != kvstore.OpGet {
			return false
		}
	}
	return true
}

// maxScanPairs bounds one /scan response's pair list; ?limit=N requests
// fewer. The walk itself always covers the whole table (the "keys" count
// is exact) — only the returned pairs are capped.
const maxScanPairs = 4096

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	limit := maxScanPairs
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		if n < limit {
			limit = n
		}
	}
	// The full-table walk is the server's most expensive read: a request
	// whose budget already ran out must not start it.
	if expired(deadlineOf(r)) {
		s.shedDeadlineHTTP(w, shedStageOp)
		return
	}
	pairs, total := s.store.Scan(limit)
	if pairs == nil {
		pairs = []kvstore.KV{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"keys":     total,
		"pairs":    pairs,
		"snapshot": s.tm.SnapshotsEnabled(),
	})
}

// wireParams is the JSON form of a tunable triple.
type wireParams struct {
	Locks  uint64 `json:"locks"`
	Shifts uint   `json:"shifts"`
	Hier   uint64 `json:"hier"`
}

func toWireParams(p core.Params) wireParams {
	return wireParams{Locks: p.Locks, Shifts: p.Shifts, Hier: p.Hier}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.tm.Stats()
	minted, free := s.tm.DescriptorCounts()
	tooOld, _, _, _ := s.tm.SnapshotCounts()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"design":         s.tm.Design().String(),
		"clock":          s.tm.Clock().String(),
		"params":         toWireParams(s.tm.Params()),
		"cm":             s.tm.CM().String(),
		"cm_switches":    st.CMSwitches,
		"keys":           s.store.Len(),
		"commits":        st.Commits,
		"aborts":         st.Aborts,
		"extensions":     st.Extensions,
		"rollovers":      st.RollOvers,
		"reconfigs":      st.Reconfigs,
		"descriptors":    map[string]int{"minted": minted, "free": free},
		"snapshots": map[string]any{
			"enabled":                 s.tm.SnapshotsEnabled(),
			"version_budget":          s.tm.VersionBudget(),
			"versions_published":      st.VersionsPublished,
			"versions_trimmed":        st.VersionsTrimmed,
			"reads_live":              st.SnapshotLiveReads,
			"reads_sidecar":           st.SnapshotVersionReads,
			"aborts_snapshot_too_old": tooOld,
		},
		"durability": s.durabilityStats(st.RedoRecords),
		"admission":  s.admissionStats(),
		"proto":      s.proto.stats(),
		"brownout":   s.brownoutStats(),
		"deadline":   map[string]any{"shed": s.deadlineShedStats()},
	})
}

// admissionWidth returns the gate's live width, 0 without a gate.
func (s *Server) admissionWidth() int {
	if s.gate == nil {
		return 0
	}
	return s.gate.Width()
}

// admissionStats renders the update-admission gate for /stats.
func (s *Server) admissionStats() map[string]any {
	if s.gate == nil {
		return map[string]any{"enabled": false}
	}
	width, inflight, admitted, waited := s.gate.Stats()
	return map[string]any{
		"enabled":  true,
		"tuned":    s.cfg.TuneAdmission,
		"width":    width,
		"inflight": inflight,
		"admitted": admitted,
		"waited":   waited,
		"expired":  s.gate.Expired(),
	}
}

// wireEvent is the JSON form of one tuning period.
type wireEvent struct {
	Period     int        `json:"period"`
	Params     wireParams `json:"params"`
	Throughput float64    `json:"throughput"`
	Commits    uint64     `json:"commits"`
	Aborts     uint64     `json:"aborts"`
	Idle       bool       `json:"idle"`
	Move       string     `json:"move,omitempty"`
	Next       wireParams `json:"next"`
	CM         string     `json:"cm,omitempty"`
	NextCM     string     `json:"next_cm,omitempty"`
	Budget     int        `json:"budget,omitempty"`
	NextBudget int        `json:"next_budget,omitempty"`
	SnapTooOld uint64     `json:"snap_too_old,omitempty"`
	AdmWidth   int        `json:"adm_width,omitempty"`
	NextAdm    int        `json:"next_adm_width,omitempty"`
	Brownout   string     `json:"brownout,omitempty"`
	NextBrown  string     `json:"next_brownout,omitempty"`
	LatP50Ns   int64      `json:"lat_p50_ns,omitempty"`
	LatP99Ns   int64      `json:"lat_p99_ns,omitempty"`
	LatSamples uint64     `json:"lat_samples,omitempty"`
	Err        string     `json:"err,omitempty"`
	CMErr      string     `json:"cm_err,omitempty"`
	SnapErr    string     `json:"snap_err,omitempty"`
	AdmErr     string     `json:"adm_err,omitempty"`
}

// traceCap bounds the tuning runtime's retained event window on a
// long-running server; maxTuningEvents bounds one /tuning response
// (?limit=N requests fewer).
const (
	traceCap        = 4096
	maxTuningEvents = 512
)

func (s *Server) handleTuning(w http.ResponseWriter, r *http.Request) {
	if s.rt == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	limit := maxTuningEvents
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		if n < limit {
			limit = n
		}
	}
	events := s.rt.Trace()
	if len(events) > limit {
		events = events[len(events)-limit:]
	}
	out := make([]wireEvent, len(events))
	reconfigurations := 0
	for i, e := range events {
		we := wireEvent{
			Period:     e.Period,
			Params:     toWireParams(e.Params),
			Throughput: e.Throughput,
			Commits:    e.Commits,
			Aborts:     e.Aborts,
			Idle:       e.Idle,
			Next:       toWireParams(e.Next),
		}
		if !e.Idle {
			we.Move = e.Move.String()
			if e.Reversed {
				we.Move = "-" + we.Move
			}
		}
		if s.cfg.TuneCM {
			we.CM = e.CM.String()
			if e.CMSwitched {
				we.NextCM = e.NextCM.String()
			}
			if e.CMErr != nil {
				we.CMErr = e.CMErr.Error()
			}
		}
		if s.cfg.TuneSnapshots {
			we.Budget = e.Budget
			we.SnapTooOld = e.SnapTooOld
			if e.BudgetChanged {
				we.NextBudget = e.NextBudget
			}
			if e.SnapErr != nil {
				we.SnapErr = e.SnapErr.Error()
			}
		}
		if s.cfg.TuneAdmission {
			we.AdmWidth = e.AdmWidth
			if e.AdmChanged {
				we.NextAdm = e.NextAdmWidth
			}
			if e.AdmErr != nil {
				we.AdmErr = e.AdmErr.Error()
			}
		}
		if s.brown != nil {
			we.Brownout = e.Brownout.String()
			if e.BrownoutChanged {
				we.NextBrown = e.NextBrownout.String()
			}
		}
		if e.LatSamples > 0 {
			we.LatP50Ns = int64(e.LatP50)
			we.LatP99Ns = int64(e.LatP99)
			we.LatSamples = e.LatSamples
		}
		if e.Err != nil {
			we.Err = e.Err.Error()
		}
		if !e.Idle && e.Next != e.Params && e.Err == nil {
			reconfigurations++
		}
		out[i] = we
	}
	best, bestTp := s.rt.Best()
	st := s.tm.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":           true,
		"running":           s.rt.Running(),
		"current":           toWireParams(s.rt.Current()),
		"best":              toWireParams(best),
		"best_throughput":   bestTp,
		"reconfigurations":  reconfigurations,
		"reconfigs_total":   st.Reconfigs,
		"periods_total":     s.rt.Periods(),
		"cm":                s.tm.CM().String(),
		"cm_tuning":         s.cfg.TuneCM,
		"cm_switches":       s.rt.CMSwitches(),
		"cm_switches_total": st.CMSwitches,
		"snapshot_tuning":   s.cfg.TuneSnapshots,
		"version_budget":    s.tm.VersionBudget(),
		"budget_moves":      s.rt.BudgetMoves(),
		"admission_tuning":  s.cfg.TuneAdmission,
		"admission_width":   s.admissionWidth(),
		"admission_moves":   s.rt.AdmissionMoves(),
		"brownout_tuning":   s.brown != nil,
		"brownout_level":    s.brownoutLevelName(),
		"events":            out,
	})
}
