package txn

import "testing"

func TestAbortKindStrings(t *testing.T) {
	for k := AbortKind(0); int(k) < NAbortKinds; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no label", k)
		}
	}
	if AbortKind(99).String() != "unknown" {
		t.Error("out-of-range kind should be unknown")
	}
}

func TestStatsSubAdd(t *testing.T) {
	a := Stats{Commits: 10, Aborts: 4, Extensions: 2, LocksValidated: 100, LocksSkipped: 50, RollOvers: 1, Reconfigs: 2}
	a.AbortsByKind[AbortValidate] = 3
	a.AbortsByKind[AbortReadConflict] = 1
	b := Stats{Commits: 4, Aborts: 1, Extensions: 1, LocksValidated: 40, LocksSkipped: 20}
	b.AbortsByKind[AbortValidate] = 1

	d := a.Sub(b)
	if d.Commits != 6 || d.Aborts != 3 || d.Extensions != 1 ||
		d.LocksValidated != 60 || d.LocksSkipped != 30 ||
		d.RollOvers != 1 || d.Reconfigs != 2 {
		t.Errorf("Sub wrong: %+v", d)
	}
	if d.AbortsByKind[AbortValidate] != 2 || d.AbortsByKind[AbortReadConflict] != 1 {
		t.Errorf("Sub kinds wrong: %+v", d.AbortsByKind)
	}

	s := d.Add(b)
	if s != a {
		t.Errorf("Add(Sub) not identity: %+v vs %+v", s, a)
	}
}
