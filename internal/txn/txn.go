// Package txn defines the transaction interface shared by the TinySTM and
// TL2 implementations, along with the statistics structures both report.
//
// Transactional data structures (package intset, package vacation) and the
// benchmark harness are generic over the Tx constraint, so each STM gets a
// statically-dispatched instantiation: there are no interface calls on the
// load/store hot path.
package txn

import "errors"

// ErrSpaceExhausted is the panic value of a transactional Alloc that
// found the memory space full, shared by both STM implementations. It is
// a typed sentinel (not a bare string) so long-running servers can
// distinguish "out of arena" — survivable: fail the request, keep serving
// — from an STM invariant violation, which must keep propagating. It
// unwinds through the Atomic retry loop like any foreign panic: the
// failed transaction is rolled back first.
var ErrSpaceExhausted = errors.New("txn: transactional memory space exhausted")

// Tx is the operation set a transaction exposes to transactional code.
// All addresses are word addresses in the STM's mem.Space (represented as
// uint64 here to avoid an import cycle with concrete STMs; mem.Addr is a
// uint64 under the hood and concrete implementations use it directly).
type Tx interface {
	// Load returns the value of the word at addr within this transaction's
	// snapshot. On conflict the transaction aborts by panicking with the
	// STM's private sentinel, unwinding to the Atomic retry loop.
	Load(addr uint64) uint64
	// Store writes the word at addr within this transaction.
	Store(addr uint64, v uint64)
	// Alloc reserves n contiguous fresh words. Allocations made by a
	// transaction that aborts are released automatically.
	Alloc(n int) uint64
	// Free releases the n-word block at addr at commit time. The block
	// remains allocated if the transaction aborts. Freeing acquires the
	// covering locks (a free is semantically an update).
	Free(addr uint64, n int)
}

// System abstracts an STM runtime for the benchmark harness: it mints
// per-thread transaction descriptors and runs atomic blocks with retry.
type System[T Tx] interface {
	// NewTx registers and returns a transaction descriptor for one worker.
	NewTx() T
	// Atomic runs fn transactionally, retrying on conflict until commit.
	Atomic(tx T, fn func(T))
	// AtomicRO runs fn as a read-only transaction (no read set; aborts
	// instead of extending; upgrades to an update transaction if fn
	// writes). Implementations may fall back to Atomic semantics.
	AtomicRO(tx T, fn func(T))
	// Stats returns a snapshot of global commit/abort counters.
	Stats() Stats
}

// SnapshotSystem extends System for STMs that run read-only transactions
// in MVCC snapshot mode: a start timestamp is picked once and every read
// is served at that timestamp (live word or version sidecar), with no read
// set, no validation and no conflict aborts. Callers that want snapshot
// semantics type-assert for it and fall back to AtomicRO when the system
// (or its configuration) does not provide it.
type SnapshotSystem[T Tx] interface {
	System[T]
	// SnapshotsEnabled reports whether snapshot mode is actually backed
	// by a version sidecar on THIS instance. Implementations may satisfy
	// the interface unconditionally (core.TM does) while AtomicSnap
	// degrades to AtomicRO when the sidecar is off — callers choosing an
	// execution strategy for long scans must check this, not just the
	// type assertion.
	SnapshotsEnabled() bool
	// AtomicSnap runs fn as a snapshot-mode read-only transaction,
	// restarting on a fresh snapshot when the current one falls off the
	// retained version horizon, and falling back to an update transaction
	// if fn writes.
	AtomicSnap(tx T, fn func(T))
}

// RedoKind names one logical redo operation a committed transaction
// contributes to a write-ahead log.
type RedoKind uint8

const (
	// RedoPut records "key now holds val". Read-modify-writes (CAS, Add)
	// log their EFFECTIVE result as a put, so replay is a pure fold of
	// puts and deletes with no operation semantics of its own.
	RedoPut RedoKind = iota
	// RedoDelete records "key is now absent".
	RedoDelete
)

// String returns the wire name used in log dumps and tests.
func (k RedoKind) String() string {
	switch k {
	case RedoPut:
		return "put"
	case RedoDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// RedoOp is one logical state change of a committed transaction: the redo
// record a durability layer persists and replays after a crash.
type RedoOp struct {
	Kind RedoKind
	Key  uint64
	Val  uint64
}

// DurableTicket is an opaque handle a RedoHook returns for one committed
// transaction's redo records; the caller that needs ack-after-durable
// semantics hands it back to the durability layer and blocks until the
// records reach stable storage.
type DurableTicket any

// RedoHook receives one committed update transaction's redo records,
// tagged with its clock epoch and commit timestamp. The STM calls it
// during commit publication WHILE THE WRITE LOCKS ARE STILL HELD: for any
// two transactions that touched a common key, the hook calls are therefore
// ordered exactly like their commit timestamps, which is what lets a
// write-ahead log reconstruct per-key history from append order. The hook
// must be fast and must not panic; the ops slice is only valid for the
// duration of the call (the descriptor reuses it) and must be copied if
// retained.
type RedoHook func(epoch, ts uint64, ops []RedoOp) DurableTicket

// AbortKind classifies why a transaction aborted.
type AbortKind int

const (
	// AbortReadConflict: a load found the covering lock owned by another
	// transaction, or the lock word changed while reading.
	AbortReadConflict AbortKind = iota
	// AbortWriteConflict: a store found the covering lock owned by another
	// transaction (encounter time) or lock acquisition failed (commit time).
	AbortWriteConflict
	// AbortValidate: read-set validation failed at commit or extension.
	AbortValidate
	// AbortExtend: a read observed a version newer than the snapshot and
	// the snapshot could not be extended (includes read-only aborts).
	AbortExtend
	// AbortExplicit: user code requested a retry.
	AbortExplicit
	// AbortFrozen: the STM froze (clock roll-over or reconfiguration).
	AbortFrozen
	// AbortUpgrade: a read-only transaction attempted a write and restarts
	// in update mode.
	AbortUpgrade
	// AbortKilled: a competing transaction's contention-management policy
	// requested this transaction's abort (cooperative kill: the victim
	// notices the request at its next conflict/commit checkpoint).
	AbortKilled
	// AbortSnapshotTooOld: a snapshot-mode read-only transaction needed a
	// version the MVCC sidecar has already trimmed past (or waited out its
	// spin budget behind an in-flight writer). The retry loop restarts it
	// on a fresh snapshot; it is the only way a snapshot transaction can
	// abort.
	AbortSnapshotTooOld
	nAbortKinds
)

// NAbortKinds is the number of abort classifications.
const NAbortKinds = int(nAbortKinds)

// String returns a short human-readable label.
func (k AbortKind) String() string {
	switch k {
	case AbortReadConflict:
		return "read-conflict"
	case AbortWriteConflict:
		return "write-conflict"
	case AbortValidate:
		return "validate"
	case AbortExtend:
		return "extend"
	case AbortExplicit:
		return "explicit"
	case AbortFrozen:
		return "frozen"
	case AbortUpgrade:
		return "upgrade"
	case AbortKilled:
		return "killed"
	case AbortSnapshotTooOld:
		return "snapshot-too-old"
	default:
		return "unknown"
	}
}

// Stats is a snapshot of an STM's global counters. Counters are summed
// across all transaction descriptors.
type Stats struct {
	Commits      uint64
	Aborts       uint64
	AbortsByKind [NAbortKinds]uint64
	// Extensions counts successful snapshot extensions (TinySTM only).
	Extensions uint64
	// LocksValidated counts read-set entries checked one-by-one during
	// validation; LocksSkipped counts entries skipped via the hierarchical
	// fast path (Figure 12's two series).
	LocksValidated uint64
	LocksSkipped   uint64
	// DupReadsSkipped counts read-set appends suppressed because the
	// stripe matched the partition's newest entry (duplicate-read
	// suppression; TinySTM only).
	DupReadsSkipped uint64
	// TicketsDiscarded counts reserved commit timestamps the TicketBatch
	// clock strategy dropped because they fell behind the visible clock
	// (TinySTM only; zero under the other strategies).
	TicketsDiscarded uint64
	// RollOvers counts clock roll-over events; Reconfigs counts dynamic
	// parameter changes.
	RollOvers uint64
	Reconfigs uint64
	// CMSwitches counts live contention-management policy changes
	// (TM.SetCM), the policy analogue of Reconfigs.
	CMSwitches uint64
	// VersionsPublished and VersionsTrimmed count pre-images delivered to
	// and evicted from the MVCC sidecar (TinySTM with Snapshots enabled).
	VersionsPublished uint64
	VersionsTrimmed   uint64
	// SnapshotLiveReads counts snapshot-mode reads served from the live
	// word (no writer had touched the stripe past the snapshot);
	// SnapshotVersionReads counts reads served from the sidecar.
	SnapshotLiveReads    uint64
	SnapshotVersionReads uint64
	// RedoRecords counts redo records handed to the attached RedoHook by
	// committed update transactions (TinySTM with a durability layer
	// attached).
	RedoRecords uint64
}

// Sub returns s - o field-wise; used to compute per-interval deltas.
func (s Stats) Sub(o Stats) Stats {
	d := Stats{
		Commits:              s.Commits - o.Commits,
		Aborts:               s.Aborts - o.Aborts,
		Extensions:           s.Extensions - o.Extensions,
		LocksValidated:       s.LocksValidated - o.LocksValidated,
		LocksSkipped:         s.LocksSkipped - o.LocksSkipped,
		DupReadsSkipped:      s.DupReadsSkipped - o.DupReadsSkipped,
		TicketsDiscarded:     s.TicketsDiscarded - o.TicketsDiscarded,
		RollOvers:            s.RollOvers - o.RollOvers,
		Reconfigs:            s.Reconfigs - o.Reconfigs,
		CMSwitches:           s.CMSwitches - o.CMSwitches,
		VersionsPublished:    s.VersionsPublished - o.VersionsPublished,
		VersionsTrimmed:      s.VersionsTrimmed - o.VersionsTrimmed,
		SnapshotLiveReads:    s.SnapshotLiveReads - o.SnapshotLiveReads,
		SnapshotVersionReads: s.SnapshotVersionReads - o.SnapshotVersionReads,
		RedoRecords:          s.RedoRecords - o.RedoRecords,
	}
	for i := range s.AbortsByKind {
		d.AbortsByKind[i] = s.AbortsByKind[i] - o.AbortsByKind[i]
	}
	return d
}

// Add returns s + o field-wise.
func (s Stats) Add(o Stats) Stats {
	d := Stats{
		Commits:              s.Commits + o.Commits,
		Aborts:               s.Aborts + o.Aborts,
		Extensions:           s.Extensions + o.Extensions,
		LocksValidated:       s.LocksValidated + o.LocksValidated,
		LocksSkipped:         s.LocksSkipped + o.LocksSkipped,
		DupReadsSkipped:      s.DupReadsSkipped + o.DupReadsSkipped,
		TicketsDiscarded:     s.TicketsDiscarded + o.TicketsDiscarded,
		RollOvers:            s.RollOvers + o.RollOvers,
		Reconfigs:            s.Reconfigs + o.Reconfigs,
		CMSwitches:           s.CMSwitches + o.CMSwitches,
		VersionsPublished:    s.VersionsPublished + o.VersionsPublished,
		VersionsTrimmed:      s.VersionsTrimmed + o.VersionsTrimmed,
		SnapshotLiveReads:    s.SnapshotLiveReads + o.SnapshotLiveReads,
		SnapshotVersionReads: s.SnapshotVersionReads + o.SnapshotVersionReads,
		RedoRecords:          s.RedoRecords + o.RedoRecords,
	}
	for i := range s.AbortsByKind {
		d.AbortsByKind[i] = s.AbortsByKind[i] + o.AbortsByKind[i]
	}
	return d
}
