// Command benchdiff compares two BENCH_<sha>.json artifacts (the files
// cmd/benchjson emits and CI uploads per push) and fails when a tracked
// metric regressed past a threshold. It closes the loop the benchmark
// trajectory was missing: artifacts were collected on every push but
// never compared, so a regression only surfaced if someone downloaded
// two of them and ran benchstat by hand.
//
// The comparison is per benchmark name over a single metric (default
// ns/op, where bigger is worse; pass -higher-is-better for rate metrics
// like txs/s). Benchmarks present in only one artifact are reported and
// skipped. -filter restricts the gate to a name subset — CI gates on the
// core/microbench suites, whose single-threaded constant factors are the
// most stable signal a 1-iteration CI run produces.
//
// CI-scale caveat: the artifacts come from -benchtime=1x runs, which are
// noisy; the default threshold is therefore deliberately loose (a real
// 20% regression in a constant factor is far outside run-to-run jitter
// for the microbenchmarks, but sub-10% differences are not resolvable).
// For a precise answer, regenerate with benchstat:
//
//	jq -r '.raw[]' old.json > old.txt; jq -r '.raw[]' new.json > new.txt
//	benchstat old.txt new.txt
//
// Usage:
//
//	benchdiff -old BENCH_aaa.json -new BENCH_bbb.json [-threshold 20]
//	          [-metric ns/op] [-filter '^Benchmark(List|Commit)'] [-warn-only]
//
// Exit status: 0 when no gated metric regressed past the threshold (or
// with -warn-only), 1 on regression, 2 on usage/input errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
)

// Benchmark mirrors cmd/benchjson's parsed result entry.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations uint64             `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Artifact mirrors cmd/benchjson's document (fields we consume).
type Artifact struct {
	SHA     string      `json:"sha"`
	Results []Benchmark `json:"benchmarks"`
}

func loadArtifact(path string) (Artifact, error) {
	var a Artifact
	data, err := os.ReadFile(path)
	if err != nil {
		return a, err
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return a, fmt.Errorf("%s: %w", path, err)
	}
	if len(a.Results) == 0 {
		return a, fmt.Errorf("%s: no benchmark results", path)
	}
	return a, nil
}

// metricsByName indexes an artifact's chosen metric; duplicate names
// (e.g. -count > 1) keep the best (smallest for costs, largest for
// rates) measurement, mirroring the repository's max-of-N convention.
func metricsByName(a Artifact, metric string, higherIsBetter bool) map[string]float64 {
	out := make(map[string]float64, len(a.Results))
	for _, b := range a.Results {
		v, ok := b.Metrics[metric]
		if !ok {
			continue
		}
		if cur, seen := out[b.Name]; seen {
			if higherIsBetter == (v < cur) {
				continue
			}
		}
		out[b.Name] = v
	}
	return out
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var (
		oldPath   = flag.String("old", "", "baseline artifact (required)")
		newPath   = flag.String("new", "", "candidate artifact (required)")
		threshold = flag.Float64("threshold", 20, "fail when the metric worsens by more than this percentage")
		metric    = flag.String("metric", "ns/op", "metric to compare")
		higher    = flag.Bool("higher-is-better", false, "treat larger metric values as improvements (rates)")
		filter    = flag.String("filter", "", "regexp of benchmark names to gate on (others are informational)")
		warnOnly  = flag.Bool("warn-only", false, "report regressions but always exit 0")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var gate *regexp.Regexp
	if *filter != "" {
		var err error
		if gate, err = regexp.Compile(*filter); err != nil {
			log.Printf("bad -filter: %v", err)
			os.Exit(2)
		}
	}
	oldArt, err := loadArtifact(*oldPath)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	newArt, err := loadArtifact(*newPath)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	regressed := compare(os.Stdout, oldArt, newArt, *metric, *threshold, *higher, gate)
	if len(regressed) > 0 {
		log.Printf("%d benchmark(s) regressed more than %.0f%% on %s: %v",
			len(regressed), *threshold, *metric, regressed)
		if !*warnOnly {
			os.Exit(1)
		}
	}
}

// compare prints the per-benchmark delta table and returns the gated
// names whose metric worsened past the threshold.
func compare(w *os.File, oldArt, newArt Artifact, metric string, threshold float64,
	higherIsBetter bool, gate *regexp.Regexp) []string {
	oldM := metricsByName(oldArt, metric, higherIsBetter)
	newM := metricsByName(newArt, metric, higherIsBetter)

	names := make([]string, 0, len(oldM))
	for name := range oldM {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "benchdiff %s -> %s (%s, threshold %.0f%%)\n",
		short(oldArt.SHA), short(newArt.SHA), metric, threshold)
	var regressed []string
	for _, name := range names {
		ov := oldM[name]
		nv, ok := newM[name]
		if !ok {
			fmt.Fprintf(w, "  %-50s %12.1f -> (removed)\n", name, ov)
			continue
		}
		deltaPct := 0.0
		if ov != 0 {
			deltaPct = (nv - ov) / ov * 100
		}
		worse := deltaPct
		if higherIsBetter {
			worse = -deltaPct
		}
		gated := gate == nil || gate.MatchString(name)
		mark := " "
		if worse > threshold {
			if gated {
				mark = "!"
				regressed = append(regressed, name)
			} else {
				mark = "~" // over threshold but not gated
			}
		}
		fmt.Fprintf(w, "%s %-50s %12.1f -> %-12.1f %+7.1f%%\n", mark, name, ov, nv, deltaPct)
	}
	for name := range newM {
		if _, ok := oldM[name]; !ok {
			fmt.Fprintf(w, "  %-50s (new) -> %.1f\n", name, newM[name])
		}
	}
	return regressed
}

func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	if sha == "" {
		return "?"
	}
	return sha
}
