package main

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func art(t *testing.T, name string, doc string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const oldDoc = `{"sha":"aaa","benchmarks":[
	{"name":"BenchmarkFoo-2","iterations":100,"metrics":{"ns/op":100,"txs/s":5000}},
	{"name":"BenchmarkBar-2","iterations":100,"metrics":{"ns/op":200}},
	{"name":"BenchmarkGone-2","iterations":100,"metrics":{"ns/op":10}}]}`

const newDoc = `{"sha":"bbb","benchmarks":[
	{"name":"BenchmarkFoo-2","iterations":100,"metrics":{"ns/op":150,"txs/s":3000}},
	{"name":"BenchmarkBar-2","iterations":100,"metrics":{"ns/op":201}},
	{"name":"BenchmarkNew-2","iterations":100,"metrics":{"ns/op":7}}]}`

func TestCompareFlagsRegressions(t *testing.T) {
	oldA, err := loadArtifact(art(t, "old.json", oldDoc))
	if err != nil {
		t.Fatal(err)
	}
	newA, err := loadArtifact(art(t, "new.json", newDoc))
	if err != nil {
		t.Fatal(err)
	}
	// Foo went 100 -> 150 ns/op: +50%, over a 20% threshold. Bar's +0.5%
	// is within it; Gone/New are informational only.
	reg := compare(os.Stdout, oldA, newA, "ns/op", 20, false, nil)
	if len(reg) != 1 || reg[0] != "BenchmarkFoo-2" {
		t.Fatalf("regressed = %v, want [BenchmarkFoo-2]", reg)
	}
	// A 60% threshold tolerates it.
	if reg := compare(os.Stdout, oldA, newA, "ns/op", 60, false, nil); len(reg) != 0 {
		t.Fatalf("regressed = %v at 60%%, want none", reg)
	}
	// A filter that excludes Foo ungates it.
	gate := regexp.MustCompile(`^BenchmarkBar`)
	if reg := compare(os.Stdout, oldA, newA, "ns/op", 20, false, gate); len(reg) != 0 {
		t.Fatalf("regressed = %v with Bar-only gate, want none", reg)
	}
	// Rate metric: txs/s dropped 5000 -> 3000 (-40%), a regression when
	// higher is better.
	if reg := compare(os.Stdout, oldA, newA, "txs/s", 20, true, nil); len(reg) != 1 {
		t.Fatalf("rate regressed = %v, want one", reg)
	}
}

func TestLoadArtifactErrors(t *testing.T) {
	if _, err := loadArtifact(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := loadArtifact(art(t, "empty.json", `{"sha":"x","benchmarks":[]}`)); err == nil {
		t.Fatal("empty artifact accepted")
	}
	if _, err := loadArtifact(art(t, "bad.json", `{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestMetricsByNameKeepsBest(t *testing.T) {
	a := Artifact{Results: []Benchmark{
		{Name: "B", Metrics: map[string]float64{"ns/op": 120}},
		{Name: "B", Metrics: map[string]float64{"ns/op": 100}},
	}}
	if got := metricsByName(a, "ns/op", false)["B"]; got != 100 {
		t.Fatalf("cost metric kept %v, want the smaller 100", got)
	}
	if got := metricsByName(a, "ns/op", true)["B"]; got != 120 {
		t.Fatalf("rate metric kept %v, want the larger 120", got)
	}
}
