// Command vacation runs the STAMP Vacation reproduction: either a single
// timed run, or the Figure 7 (#locks × #shifts) sweep.
//
// Examples:
//
//	vacation                         # single paper-scale run
//	vacation -sweep                  # Figure 7 grid
//	vacation -r 16384 -q 90 -u 80 -n 4 -threads 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"tinystm/internal/cliutil"
	"tinystm/internal/cm"
	"tinystm/internal/core"
	"tinystm/internal/experiments"
	"tinystm/internal/harness"
	"tinystm/internal/vacation"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vacation: ")

	var (
		relations = flag.Int("r", 1<<12, "records per relation")
		queryPct  = flag.Int("q", 90, "percent of relations queried")
		userPct   = flag.Int("u", 80, "percent of user (reservation) transactions")
		queries   = flag.Int("n", 4, "queries per transaction")
		threads   = flag.String("threads", "1,2,4,6,8", "thread counts")
		duration  = flag.Duration("duration", time.Second, "window per point")
		warmup    = flag.Duration("warmup", 200*time.Millisecond, "warm-up per point")
		sweep     = flag.Bool("sweep", false, "run the Figure 7 locks x shifts sweep")
		locks     = flag.String("locks", "16,18,20,22,24", "lock exponents for -sweep")
		shifts    = flag.String("shifts", "0,2,4,6,8", "shift values for -sweep")
		seed      = flag.Uint64("seed", 42, "seed")
		quick     = flag.Bool("quick", false, "milliseconds-scale smoke run")
		yield_    = flag.Int("yield", 0, "yield after every N loads (multi-core interleaving simulation; 0 = off)")
		repeats   = flag.Int("repeats", 1, "measurements per point (maximum kept)")
		csv       = flag.Bool("csv", false, "CSV output")
		cmFlag    = flag.String("cm", "suicide", "contention-management policy (suicide, backoff, karma, timestamp, serializer)")
	)
	flag.Parse()

	ths, err := cliutil.ParseInts(*threads)
	if err != nil {
		log.Fatal(err)
	}
	sc := cliutil.Scale(*duration, *warmup, ths, *seed, *quick, *yield_)
	sc.Repeats = *repeats
	ck, err := cm.ParseKind(*cmFlag)
	if err != nil {
		log.Fatal(err)
	}
	sc.CM = ck
	vp := vacation.Params{
		Relations: *relations, QueryPct: *queryPct,
		UserPct: *userPct, QueriesPerTx: *queries,
	}
	if *quick {
		vp.Relations = 256
		sc.Duration = 40 * time.Millisecond
	}

	emit := func(tbl harness.Table) {
		if *csv {
			tbl.RenderCSV(os.Stdout)
		} else {
			tbl.Render(os.Stdout)
		}
		fmt.Println()
	}

	if *sweep {
		les, err := cliutil.ParseInts(*locks)
		if err != nil {
			log.Fatal(err)
		}
		shs, err := cliutil.ParseUints(*shifts)
		if err != nil {
			log.Fatal(err)
		}
		if *quick {
			if len(les) > 2 {
				les = les[:2]
			}
			if len(shs) > 2 {
				shs = shs[:2]
			}
		}
		r := experiments.Figure7(sc, vp, les, shs)
		emit(r.ToTable())
		best, tp := r.Best()
		fmt.Printf("best configuration: %v at %.1f x10^3 txs/s\n", best, tp/1000)
		return
	}

	tbl := harness.Table{
		Title: fmt.Sprintf("Vacation: r=%d q=%d%% u=%d%% n=%d",
			vp.Relations, vp.QueryPct, vp.UserPct, vp.QueriesPerTx),
		Headers: []string{"threads", "design", "throughput (10^3/s)", "aborts (10^3/s)"},
	}
	geo := core.Params{Locks: 1 << 20, Shifts: 0, Hier: 1}
	for _, th := range sc.Threads {
		for _, d := range []core.Design{core.WriteBack, core.WriteThrough} {
			p := experiments.RunVacationPoint(sc, d, geo, vp, th)
			tbl.AddRow(th, d.String(),
				fmt.Sprintf("%.1f", p.Throughput/1000),
				fmt.Sprintf("%.1f", p.AbortRate/1000))
		}
	}
	emit(tbl)
}
