// Command stmbench runs the paper's integer-set benchmarks (Figures 2-5):
// throughput and abort rates of TinySTM write-back / write-through and TL2
// over the red-black tree and sorted linked list micro-benchmarks.
//
// Examples:
//
//	stmbench                      # all panels of Figures 2-4, paper scale
//	stmbench -fig 5               # the Figure 5 size x update surface
//	stmbench -fig 3 -quick -csv   # fast smoke run, CSV output
//	stmbench -b skiplist -size 1024 -update 20   # extension workload
//	stmbench -fig cm -b list -size 256 -update 80   # contention-management sweep
//	stmbench -cm karma -fig 3     # run a figure under the Karma policy
//	stmbench -fig snapshot -threads 4   # RO full scans x writers, MVCC on/off
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"tinystm/internal/cliutil"
	"tinystm/internal/cm"
	"tinystm/internal/core"
	"tinystm/internal/experiments"
	"tinystm/internal/harness"
	"tinystm/internal/tuning"
)

// defaultGeometry matches the fixed configuration the non-sweep figures
// use (2^20 locks, no shift, hierarchy disabled).
var defaultGeometry = core.Params{Locks: 1 << 20, Shifts: 0, Hier: 1}

func main() {
	log.SetFlags(0)
	log.SetPrefix("stmbench: ")

	var (
		fig      = flag.String("fig", "all", "figure to reproduce: 2, 3, 4, 4r, 5, all, custom, clock, cm, server, snapshot, proto")
		cmFlag   = flag.String("cm", "suicide", "contention-management policy (suicide, backoff, karma, timestamp, serializer); -fig cm sweeps all five")
		clock    = flag.String("clock", "fetchinc", "commit-clock strategy for TinySTM points (fetchinc, lazy, ticket); -fig clock sweeps all three")
		bench    = flag.String("b", "rbtree", "structure for -fig custom (list, rbtree, skiplist, hashset)")
		size     = flag.Int("size", 4096, "initial elements for -fig custom")
		update   = flag.Int("update", 20, "update percentage for -fig custom")
		threads  = flag.String("threads", "1,2,4,6,8", "comma-separated thread counts")
		duration = flag.Duration("duration", time.Second, "measurement window per point")
		warmup   = flag.Duration("warmup", 200*time.Millisecond, "warm-up before measuring")
		seed     = flag.Uint64("seed", 42, "workload seed")
		quick    = flag.Bool("quick", false, "milliseconds-scale smoke run")
		yield_   = flag.Int("yield", 0, "yield after every N loads (multi-core interleaving simulation; 0 = off)")
		repeats  = flag.Int("repeats", 1, "measurements per point (maximum kept)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		autotune = flag.Bool("autotune", false, "run the online auto-tuning runtime against a live workload (uses -b, -size, -update, -threads, -duration; overrides -fig)")
		tuneCM   = flag.Bool("tune-cm", false, "let -autotune also switch the contention-management policy live")
		periods  = flag.Int("periods", 30, "tuning periods for -autotune")
		shift    = flag.Int("shift", 0, "flip the workload phase every N tuning periods for -autotune (0 = half the run)")
	)
	flag.Parse()

	ths, err := cliutil.ParseInts(*threads)
	if err != nil {
		log.Fatal(err)
	}
	sc := cliutil.Scale(*duration, *warmup, ths, *seed, *quick, *yield_)
	sc.Repeats = *repeats
	cs, err := core.ParseClockStrategy(*clock)
	if err != nil {
		log.Fatal(err)
	}
	sc.Clock = cs
	ck, err := cm.ParseKind(*cmFlag)
	if err != nil {
		log.Fatal(err)
	}
	sc.CM = ck

	emit := func(tbl harness.Table) {
		if *csv {
			tbl.RenderCSV(os.Stdout)
		} else {
			tbl.Render(os.Stdout)
		}
		fmt.Println()
	}

	if *autotune {
		kind, err := cliutil.ParseKind(*bench)
		if err != nil {
			log.Fatal(err)
		}
		runAutotune(sc, kind, *size, *update, *periods, *shift, *tuneCM, emit)
		return
	}

	switch *fig {
	case "2":
		runFig2(sc, emit)
	case "3":
		runFig3(sc, emit)
	case "4":
		runFig4(sc, emit)
	case "4r":
		emit(experiments.Figure4Overwrite(sc, 256, 5).ToTable("throughput"))
	case "5":
		runFig5(sc, emit)
	case "all":
		runFig2(sc, emit)
		runFig3(sc, emit)
		runFig4(sc, emit)
		emit(experiments.Figure4Overwrite(sc, 256, 5).ToTable("throughput"))
	case "clock":
		kind, err := cliutil.ParseKind(*bench)
		if err != nil {
			log.Fatal(err)
		}
		ip := harness.IntsetParams{Kind: kind, InitialSize: *size, UpdatePct: *update}
		for _, d := range []core.Design{core.WriteBack, core.WriteThrough} {
			emit(experiments.SweepClockStrategies(sc, d, defaultGeometry, ip,
				core.AllClockStrategies).ToTable())
		}
	case "cm":
		// Contention-management sweep: all five policies across thread
		// counts. Pass a hot mix (-b list -size 256 -update 80, plus
		// -yield on few-core hosts) to make the policies actually
		// differ; under light contention they all converge on Suicide's
		// numbers.
		kind, err := cliutil.ParseKind(*bench)
		if err != nil {
			log.Fatal(err)
		}
		ip := harness.IntsetParams{Kind: kind, InitialSize: *size, UpdatePct: *update}
		for _, d := range []core.Design{core.WriteBack, core.WriteThrough} {
			emit(experiments.SweepCMPolicies(sc, d, defaultGeometry, ip, cm.AllKinds).ToTable())
		}
	case "server":
		// Open-loop service load (the cmd/stmkvd shape, in-process):
		// autotuned vs. static geometries under a calm-to-hot phase flip.
		cfg := experiments.DefaultServerConfig(sc)
		fmt.Printf("server sweep: rate %.0f req/s, %d workers, %v per point, period %v, start %v\n",
			cfg.Rate, cfg.Workers, cfg.Duration, cfg.Period, cfg.Start)
		r := experiments.ServerSweep(sc, cfg)
		for _, ev := range r.Events {
			fmt.Println(ev)
		}
		fmt.Println()
		emit(r.ToTable())
	case "proto":
		// Wire-surface and admission comparison over live TCP servers:
		// HTTP+JSON vs. the binary kvproto protocol at equal workers,
		// then a hot-key write storm with the admission gate off vs. on.
		cfg := experiments.DefaultProtoConfig(sc)
		fmt.Printf("proto sweep: %d keys, %d workers, %v per point, storm read %d%% theta %.2f, admission width %d\n",
			cfg.Keys, cfg.Workers, cfg.Duration, cfg.StormReadPct, cfg.StormTheta, cfg.AdmissionWidth)
		r := experiments.ProtoSweep(sc, cfg)
		emit(r.SurfaceTable())
		emit(r.StormTable())
	case "snapshot":
		// Read-only full-table scans under write pressure: the MVCC
		// sidecar off (classic RO transactions that abort under writers)
		// vs. on across version budgets. -size overrides the table,
		// -threads the writer sweep.
		cfg := experiments.DefaultSnapshotConfig(sc)
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "size" {
				cfg.Keys = uint64(*size)
			}
		})
		fmt.Printf("snapshot sweep: %d keys, %d scanners, theta %.2f, %v per point, budgets %v\n",
			cfg.Keys, cfg.Scanners, cfg.Theta, cfg.Duration, cfg.Budgets)
		emit(experiments.SnapshotSweep(sc, cfg).ToTable())
	case "custom":
		kind, err := cliutil.ParseKind(*bench)
		if err != nil {
			log.Fatal(err)
		}
		ip := harness.IntsetParams{Kind: kind, InitialSize: *size, UpdatePct: *update}
		tbl := harness.Table{
			Title:   fmt.Sprintf("custom: %v, %d elements, %d%% updates", kind, *size, *update),
			Headers: []string{"threads", "system", "throughput (10^3/s)", "aborts (10^3/s)"},
		}
		for _, th := range sc.Threads {
			for _, sys := range experiments.AllSystems {
				p := experiments.RunIntsetPoint(sc, sys, defaultGeometry, ip, th)
				tbl.AddRow(th, sys.String(),
					fmt.Sprintf("%.1f", p.Throughput/1000),
					fmt.Sprintf("%.1f", p.AbortRate/1000))
			}
		}
		emit(tbl)
	default:
		log.Fatalf("unknown -fig %q", *fig)
	}
}

// runAutotune drives the online tuning runtime against a live workload
// starting from the paper's deliberately bad (2^8, 0, 1) configuration,
// printing one trace line per tuning period as the controller makes its
// moves; a mid-run phase shift exercises re-adaptation. It ends with the
// autotuned-vs-static comparison table.
func runAutotune(sc experiments.Scale, kind harness.Kind, size, update, periods, shift int,
	tuneCM bool, emit func(harness.Table)) {
	ac := experiments.DefaultAutotuneConfig(sc, kind)
	ac.TuneCM = tuneCM
	calm := harness.IntsetParams{Kind: kind, InitialSize: size, UpdatePct: update}
	hot := calm
	hot.UpdatePct = min(update+60, 100)
	hot.Range = uint64(size) / 4 // working-set shrink: conflicts concentrate
	ac.Phases = []harness.IntsetParams{calm, hot}
	ac.Periods = periods
	if shift > 0 {
		ac.ShiftEvery = shift
	} else {
		ac.ShiftEvery = periods / 2
	}
	ac.OnEvent = func(ev tuning.Event) {
		fmt.Println(ev)
		if ac.ShiftEvery > 0 && (ev.Period+1)%ac.ShiftEvery == 0 && ev.Period+1 < ac.Periods {
			fmt.Println("--- workload phase shift ---")
		}
	}
	fmt.Printf("autotune: %v, %d elements, %d%% updates, %d threads, period %v, start %v\n",
		kind, size, update, ac.Threads, ac.Period, ac.Start)
	r := experiments.AutotuneSweep(sc, ac)
	fmt.Println()
	emit(r.TraceTable("autotune trace"))
	emit(r.ComparisonTable())
	for phase, bs := range r.BestStatic {
		fmt.Printf("phase %d: autotuned best %.0f txs/s vs. best static %v at %.0f txs/s\n",
			phase, r.PhaseBest[phase], bs.Params, bs.Throughput)
	}
}

func runFig2(sc experiments.Scale, emit func(harness.Table)) {
	for _, c := range []struct{ size, update int }{{256, 20}, {4096, 20}, {4096, 60}} {
		emit(experiments.Figure2(sc, c.size, c.update).ToTable("throughput"))
	}
}

func runFig3(sc experiments.Scale, emit func(harness.Table)) {
	for _, c := range []struct{ size, update int }{{256, 0}, {256, 20}, {4096, 20}} {
		emit(experiments.Figure3(sc, c.size, c.update).ToTable("throughput"))
	}
}

func runFig4(sc experiments.Scale, emit func(harness.Table)) {
	emit(experiments.Figure4Aborts(sc, harness.KindRBTree, 4096, 20).ToTable("aborts"))
	emit(experiments.Figure4Aborts(sc, harness.KindList, 256, 20).ToTable("aborts"))
}

func runFig5(sc experiments.Scale, emit func(harness.Table)) {
	sizes := []int{256, 512, 1024, 2048, 4096}
	updates := []int{0, 20, 40, 60, 80, 100}
	emit(experiments.Figure5(sc, harness.KindRBTree, sizes, updates).ToTable())
	emit(experiments.Figure5(sc, harness.KindList, sizes, updates).ToTable())
}
