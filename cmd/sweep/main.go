// Command sweep reproduces the parameter-sweep figures (6, 8 and 9):
// throughput over the (#locks × #shifts) grid, the influence of the
// hierarchical array size, and the improvement curves.
//
// Examples:
//
//	sweep -fig 6 -b rbtree           # Figure 6, red-black tree surface
//	sweep -fig 8 -b list -quick      # Figure 8 at smoke scale
//	sweep -fig 9                     # all three Figure 9 panels
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"tinystm/internal/cliutil"
	"tinystm/internal/cm"
	"tinystm/internal/experiments"
	"tinystm/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")

	var (
		fig      = flag.String("fig", "6", "figure to reproduce: 6, 8, 9")
		bench    = flag.String("b", "rbtree", "structure (list, rbtree)")
		locks    = flag.String("locks", "8,10,12,14,16,18,20,22,24", "lock-array exponents")
		shifts   = flag.String("shifts", "0,1,2,3,4,5,6", "shift values")
		hiers    = flag.String("hiers", "4,16,64,256", "hierarchical sizes (fig 9 right)")
		threads  = flag.String("threads", "1,2,4,6,8", "thread counts (max used)")
		duration = flag.Duration("duration", time.Second, "window per point")
		warmup   = flag.Duration("warmup", 200*time.Millisecond, "warm-up per point")
		seed     = flag.Uint64("seed", 42, "workload seed")
		quick    = flag.Bool("quick", false, "milliseconds-scale smoke run")
		yield_   = flag.Int("yield", 0, "yield after every N loads (multi-core interleaving simulation; 0 = off)")
		repeats  = flag.Int("repeats", 1, "measurements per point (maximum kept)")
		csv      = flag.Bool("csv", false, "CSV output")
		cmFlag   = flag.String("cm", "suicide", "contention-management policy (suicide, backoff, karma, timestamp, serializer)")
	)
	flag.Parse()

	ths, err := cliutil.ParseInts(*threads)
	if err != nil {
		log.Fatal(err)
	}
	les, err := cliutil.ParseInts(*locks)
	if err != nil {
		log.Fatal(err)
	}
	shs, err := cliutil.ParseUints(*shifts)
	if err != nil {
		log.Fatal(err)
	}
	hs, err := cliutil.ParseUint64s(*hiers)
	if err != nil {
		log.Fatal(err)
	}
	kind, err := cliutil.ParseKind(*bench)
	if err != nil {
		log.Fatal(err)
	}
	sc := cliutil.Scale(*duration, *warmup, ths, *seed, *quick, *yield_)
	sc.Repeats = *repeats
	ck, err := cm.ParseKind(*cmFlag)
	if err != nil {
		log.Fatal(err)
	}
	sc.CM = ck
	if *quick {
		// Keep smoke runs small: trim the grid.
		if len(les) > 3 {
			les = les[:3]
		}
		if len(shs) > 3 {
			shs = shs[:3]
		}
	}

	emit := func(tbl harness.Table) {
		if *csv {
			tbl.RenderCSV(os.Stdout)
		} else {
			tbl.Render(os.Stdout)
		}
		fmt.Println()
	}

	switch *fig {
	case "6":
		r := experiments.Figure6(sc, kind, les, shs)
		emit(r.ToTable())
		best, tp := r.Best()
		fmt.Printf("best static configuration: %v at %.1f x10^3 txs/s\n", best, tp/1000)
	case "8":
		r := experiments.Figure8(sc, kind, les, shs)
		emit(r.ToTable())
		best, tp := r.Best()
		fmt.Printf("best static configuration: %v at %.1f x10^3 txs/s\n", best, tp/1000)
	case "9":
		emit(experiments.Figure9Locks(sc, les).ToTable())
		maxExp := les[len(les)-1]
		emit(experiments.Figure9Shifts(sc, maxExp, shs).ToTable())
		emit(experiments.Figure9Hier(sc, maxExp, hs).ToTable())
	default:
		log.Fatalf("unknown -fig %q (6, 8, 9)", *fig)
	}
}
