// Command netchaos runs the deterministic fault-injecting TCP proxy from
// internal/netchaos as a standalone process, for chaos-testing a live
// stmkvd from scripts (scripts/smoke_chaos.sh) or by hand: point a
// client at the proxy, point the proxy at the server, and dial in
// latency, stalls, resets, partial writes, byte corruption and a timed
// blackout window.
//
// The bound address is logged as "netchaos listening on <addr>" so
// scripts can parse it (use -listen 127.0.0.1:0 for an ephemeral port).
// On SIGINT/SIGTERM the proxy prints its cumulative fault counters and
// exits 0.
//
// Examples:
//
//	netchaos -target localhost:8081                        # transparent relay
//	netchaos -target localhost:8081 -reset-every 65536     # RST every ~64KiB
//	netchaos -target localhost:8081 -corrupt-every 131072 -chunk 7
//	netchaos -target localhost:8081 -blackout-at 5s -blackout-for 2s
//	                                                       # full outage window:
//	                                                       # breaker-cycle fodder
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tinystm/internal/netchaos"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netchaos: ")

	var (
		target   = flag.String("target", "", "upstream address to forward to (required)")
		listen   = flag.String("listen", "127.0.0.1:0", "listen address (:0 for an ephemeral port)")
		seed     = flag.Uint64("seed", 1, "deterministic fault-schedule seed")
		latency  = flag.Duration("latency", 0, "fixed one-way delay per forwarded read")
		stallEv  = flag.Int64("stall-every", 0, "stall roughly every N forwarded bytes per direction (0 = never)")
		stallFor = flag.Duration("stall-for", time.Second, "stall duration (with -stall-every)")
		resetEv  = flag.Int64("reset-every", 0, "sever (RST) after roughly N forwarded bytes in one direction (0 = never)")
		corrupt  = flag.Int64("corrupt-every", 0, "flip one byte roughly every N forwarded bytes per direction (0 = never)")
		chunk    = flag.Int("chunk", 0, "split forwards into writes of at most N bytes (0 = whole reads)")
		blackAt  = flag.Duration("blackout-at", 0, "start a full outage this long after boot (0 = never)")
		blackFor = flag.Duration("blackout-for", 2*time.Second, "outage length (with -blackout-at): live connections are killed, new ones reset")
	)
	flag.Parse()

	if *target == "" {
		log.Fatal("-target is required")
	}
	p, err := netchaos.New(netchaos.Config{
		Target:       *target,
		Listen:       *listen,
		Seed:         *seed,
		Latency:      *latency,
		StallEvery:   *stallEv,
		StallFor:     *stallFor,
		ResetEvery:   *resetEv,
		CorruptEvery: *corrupt,
		ChunkBytes:   *chunk,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("netchaos listening on %s -> %s (seed=%d)", p.Addr(), *target, *seed)

	if *blackAt > 0 {
		time.AfterFunc(*blackAt, func() {
			log.Printf("blackout: ON for %v", *blackFor)
			p.SetBlackout(true)
			time.AfterFunc(*blackFor, func() {
				p.SetBlackout(false)
				log.Print("blackout: OFF")
			})
		})
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := p.Stats()
	p.Close()
	log.Printf("final: accepted=%d resets=%d corrupted=%d stalls=%d",
		st.Accepted, st.Resets, st.Corrupted, st.Stalls)
}
