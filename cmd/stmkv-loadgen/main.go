// Command stmkv-loadgen drives a running stmkvd with open-loop,
// Zipf-skewed, service-shaped traffic: requests are issued on a fixed
// arrival schedule (-rate) regardless of response times, the way real
// users arrive, so a slow server configuration shows up as queueing
// latency and shed load instead of silently lowering the offered rate.
//
// The key popularity follows a Zipfian distribution (-theta; 0 uniform,
// 0.99 heavily skewed), the operation mix splits between reads, CAS
// read-modify-writes, multi-key atomic batches and plain writes, and
// -shift flips to a second mix (-read2/-theta2) halfway through the run —
// the phase change the server's autotuner must re-adapt to.
//
// Connection failures and 503s are retried through a shared
// resilience.Retrier: capped exponential backoff under one token-bucket
// retry budget for the whole process, so a run rides through a server
// restart without ever amplifying an outage by more than the budget's
// ratio. The summary's retries/retry-budget lines show how much traffic
// waited out a WAL replay or brownout. With -op-timeout every request
// carries that deadline to the server (X-Timeout-Ms on HTTP, the flagged
// TimeoutMs field on the binary surface), and the binary path also runs
// kvclient's circuit breaker in front of redials (-breaker-threshold,
// -breaker-cooldown).
//
// Examples:
//
//	stmkv-loadgen -addr http://localhost:8080 -rate 5000 -duration 30s
//	stmkv-loadgen -rate 2000 -theta 0.99 -read 95          # hot read-mostly
//	stmkv-loadgen -shift -read 90 -read2 30 -theta2 0.5    # mid-run phase flip
//	stmkv-loadgen -min-ops 10000                           # CI gate: exit 1 if fewer complete
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sync/atomic"
	"syscall"
	"time"

	"strings"

	"tinystm/internal/harness"
	"tinystm/internal/kvclient"
	"tinystm/internal/kvproto"
	"tinystm/internal/resilience"
	"tinystm/internal/rng"
)

type mixConsts struct {
	zipf    *rng.Zipf
	readPct int
	casPct  int
	batch   int
	bsize   int
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("stmkv-loadgen: ")

	var (
		addr     = flag.String("addr", "http://localhost:8080", "stmkvd base URL (with -proto binary: host:port of -proto-addr)")
		proto    = flag.String("proto", "http", "wire surface: http (JSON) or binary (pipelined kvproto)")
		conns    = flag.Int("conns", 1, "binary-protocol connections; workers round-robin over them (with -proto binary)")
		rate     = flag.Float64("rate", 5000, "arrival rate, requests/second")
		duration = flag.Duration("duration", 10*time.Second, "length of the arrival schedule")
		workers  = flag.Int("workers", 32, "request concurrency")
		queue    = flag.Int("queue", 0, "arrival queue bound (0 = 4x workers); overflow is shed")
		keys     = flag.Uint64("keys", 4096, "keyspace size")
		theta    = flag.Float64("theta", 0.9, "Zipfian key skew in [0,1)")
		readPct  = flag.Int("read", 80, "percent single-key GETs")
		casPct   = flag.Int("cas", 5, "percent CAS read-modify-writes")
		batchPct = flag.Int("batch", 5, "percent multi-key atomic batches")
		bsize    = flag.Int("batch-size", 4, "keys per batch")
		shift    = flag.Bool("shift", false, "flip to the phase-2 mix halfway through")
		readPct2 = flag.Int("read2", 20, "phase-2 percent reads (with -shift)")
		theta2   = flag.Float64("theta2", 0.99, "phase-2 Zipfian skew (with -shift)")
		preload  = flag.Bool("preload", true, "PUT every key once before the timed run")
		seed     = flag.Uint64("seed", 42, "workload seed")
		minOps   = flag.Uint64("min-ops", 0, "exit 1 unless at least this many requests complete")

		opTimeout = flag.Duration("op-timeout", 0, "per-request deadline, propagated to the server (0 = none)")
		retryTok  = flag.Float64("retry-tokens", 0, "retry-budget bucket capacity shared by the whole run (0 = default 16)")
		retryRat  = flag.Float64("retry-ratio", 0, "retry-budget tokens earned back per success (0 = default 0.1)")
		retryMax  = flag.Int("retry-attempts", 16, "max attempts per request including the first")
		brkThresh = flag.Int("breaker-threshold", 0, "consecutive dial/connection failures that open the binary client's breaker (0 = default 5)")
		brkCool   = flag.Duration("breaker-cooldown", 0, "how long an open breaker waits before probing (0 = default 1s)")
	)
	flag.Parse()

	checkMix := func(phase string, read int, theta float64) {
		if read < 0 || *casPct < 0 || *batchPct < 0 || read+*casPct+*batchPct > 100 {
			log.Fatalf("%s mix invalid: read=%d cas=%d batch=%d must be >= 0 and sum <= 100",
				phase, read, *casPct, *batchPct)
		}
		if theta < 0 || theta >= 1 {
			log.Fatalf("%s theta (%v) must be in [0, 1)", phase, theta)
		}
	}
	checkMix("phase-1", *readPct, *theta)
	if *shift {
		checkMix("phase-2", *readPct2, *theta2)
	}
	if *keys == 0 || *rate <= 0 || *workers <= 0 || *bsize <= 0 || *conns <= 0 {
		log.Fatal("-keys, -rate, -workers, -batch-size and -conns must be positive")
	}

	// One retry budget and one retrier for the whole process: every
	// worker's retries spend from the same bucket, so a server outage is
	// never amplified by more than the budget's ratio of good traffic.
	budget := resilience.NewRetryBudget(&resilience.RetryBudgetConfig{
		Tokens: *retryTok, Ratio: *retryRat,
	})
	retrier := resilience.NewRetrier(resilience.RetryConfig{
		MaxAttempts: *retryMax,
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  time.Second,
		Budget:      budget,
		Retryable:   retryable,
	})

	// doOp issues one mixed operation over the selected surface; the
	// worker id spreads binary traffic round-robin over the connections.
	var doOp func(m *mixConsts, r *rng.Rand, worker int) error
	var preloadOp func(key, val uint64) error
	var clients []*kvclient.Client // binary surface only; summary reads breaker stats
	switch *proto {
	case "http":
		var rt http.RoundTripper = &http.Transport{
			MaxIdleConns: 4 * *workers, MaxIdleConnsPerHost: 4 * *workers,
		}
		client := &http.Client{Transport: rt}
		if *opTimeout > 0 {
			// Propagate the budget on every request and give the client a
			// little slack past it, so the server's 504 (it knows WHERE the
			// deadline died) usually beats the local abort.
			client.Transport = deadlineTransport{rt: rt, ms: fmt.Sprint(opTimeout.Milliseconds())}
			client.Timeout = *opTimeout + 250*time.Millisecond
		}
		doOp = func(m *mixConsts, r *rng.Rand, _ int) error {
			return oneRequest(client, *addr, m, r)
		}
		preloadOp = func(key, val uint64) error { return put(client, *addr, key, val) }
	case "binary":
		target := strings.TrimPrefix(*addr, "http://")
		copts := kvclient.Options{
			OpTimeout: *opTimeout,
			Breaker: &resilience.BreakerConfig{
				FailureThreshold: *brkThresh, Cooldown: *brkCool, Seed: *seed,
			},
		}
		clients = make([]*kvclient.Client, *conns)
		for i := range clients {
			clients[i] = kvclient.New(target, copts)
			defer clients[i].Close()
		}
		doOp = func(m *mixConsts, r *rng.Rand, worker int) error {
			return oneBinaryRequest(clients[worker%len(clients)], m, r)
		}
		preloadOp = func(key, val uint64) error {
			_, err := clients[0].Put(key, val)
			return err
		}
	default:
		log.Fatalf("-proto %q: want http or binary", *proto)
	}

	if *preload {
		r := rng.New(*seed)
		for k := uint64(0); k < *keys; k++ {
			k := k
			v := r.Uint64() % 1000
			if err := retrier.Do(func() error { return preloadOp(k, v) }); err != nil {
				log.Fatalf("preload key %d: %v", k, err)
			}
		}
		log.Printf("preloaded %d keys", *keys)
	}

	phase1 := mixConsts{zipf: rng.NewZipf(*keys, *theta), readPct: *readPct,
		casPct: *casPct, batch: *batchPct, bsize: *bsize}
	phase2 := phase1
	if *shift {
		phase2 = mixConsts{zipf: rng.NewZipf(*keys, *theta2), readPct: *readPct2,
			casPct: *casPct, batch: *batchPct, bsize: *bsize}
	}
	//stm:allow-atomic client-side phase flip; the loadgen process runs no STM
	var phase atomic.Pointer[mixConsts]
	phase.Store(&phase1)
	if *shift {
		time.AfterFunc(*duration/2, func() {
			phase.Store(&phase2)
			log.Printf("phase shift: read %d%%->%d%% theta %.2f->%.2f",
				*readPct, *readPct2, *theta, *theta2)
		})
	}

	res := harness.OpenLoop{
		Rate: *rate, Duration: *duration, Workers: *workers, Queue: *queue, Seed: *seed,
		NewOp: func(w *harness.Worker) (func(*harness.Worker) error, func()) {
			return func(w *harness.Worker) error {
				return retrier.Do(func() error {
					return doOp(phase.Load(), w.Rng, w.ID)
				})
			}, nil
		},
	}.Run()

	bs := budget.Stats()
	log.Printf("offered=%d completed=%d dropped=%d errors=%d retries=%d",
		res.Offered, res.Completed, res.Dropped, res.Errors, retrier.Retries())
	log.Printf("retry-budget tokens=%.1f/%.1f allowed=%d denied=%d",
		bs.Tokens, bs.Cap, bs.Allowed, bs.Denied)
	if len(clients) > 0 {
		var opens, probes, closes uint64
		for _, cl := range clients {
			st := cl.ResilienceStats()
			opens += st.Breaker.Opens
			probes += st.Breaker.Probes
			closes += st.Breaker.Closes
		}
		log.Printf("breaker opens=%d probes=%d closes=%d state=%s",
			opens, probes, closes, clients[0].ResilienceStats().BreakerState)
	}
	log.Printf("throughput=%.0f req/s goodput=%.0f req/s latency p50=%v p95=%v p99=%v max=%v",
		res.Throughput, res.Goodput, res.P50, res.P95, res.P99, res.Max)
	if *minOps > 0 && res.Completed < *minOps {
		log.Printf("FAIL: completed %d < min-ops %d", res.Completed, *minOps)
		os.Exit(1)
	}
	if res.Completed > 0 && res.Errors == res.Completed {
		log.Print("FAIL: every request errored")
		os.Exit(1)
	}
}

// deadlineTransport stamps the relative deadline budget onto every
// outgoing HTTP request so the server can shed the ones that expire in
// its queues instead of executing corpses.
type deadlineTransport struct {
	rt http.RoundTripper
	ms string
}

func (t deadlineTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	r = r.Clone(r.Context())
	r.Header.Set(resilience.TimeoutHeader, t.ms)
	return t.rt.RoundTrip(r)
}

// statusError is a non-2xx HTTP response, kept typed so the retry policy
// can distinguish "server temporarily unavailable" from a real failure.
type statusError struct {
	method, path, status string
	code                 int
}

func (e statusError) Error() string {
	return fmt.Sprintf("%s %s: %s", e.method, e.path, e.status)
}

// retryable reports whether an error is worth retrying: the connection
// died (server killed or restarting — refused, reset, or cut mid-reply)
// or the server answered 503 (WAL replay, degraded mode, brownout,
// shutdown). A deadline failure is never retried — that budget is
// already spent. Any other failure propagates immediately.
func retryable(err error) bool {
	var se statusError
	if errors.As(err, &se) {
		return se.code == http.StatusServiceUnavailable
	}
	// Binary-surface analogues: StatusUnavailable is the 503, a broken
	// connection or an open breaker redials on a later attempt.
	if kvclient.Retryable(err) {
		return true
	}
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// oneRequest performs one mixed operation against the server.
func oneRequest(c *http.Client, base string, m *mixConsts, r *rng.Rand) error {
	key := m.zipf.Next(r)
	switch p := r.Intn(100); {
	case p < m.readPct:
		return get(c, base, key)
	case p < m.readPct+m.casPct:
		// Optimistic RMW over the wire: read, then CAS once.
		resp, err := c.Get(fmt.Sprintf("%s/kv/%d", base, key))
		if err != nil {
			return err
		}
		var cur struct{ Val uint64 }
		err = decodeOK(resp, &cur)
		if err != nil {
			return put(c, base, key, 1) // absent: seed it
		}
		body := fmt.Sprintf(`{"old":%d,"new":%d}`, cur.Val, cur.Val+1)
		resp, err = c.Post(fmt.Sprintf("%s/kv/%d/cas", base, key), "application/json",
			bytes.NewReader([]byte(body)))
		if err != nil {
			return err
		}
		return drain(resp)
	case p < m.readPct+m.casPct+m.batch:
		var b bytes.Buffer
		b.WriteString(`{"ops":[`)
		for i := 0; i < m.bsize; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `{"op":"add","key":%d,"val":1}`, m.zipf.Next(r))
		}
		b.WriteString(`]}`)
		resp, err := c.Post(base+"/batch", "application/json", &b)
		if err != nil {
			return err
		}
		return drain(resp)
	default:
		return put(c, base, key, r.Uint64()%100000)
	}
}

// oneBinaryRequest performs one mixed operation over the pipelined
// binary protocol — the same mix shape as oneRequest, minus HTTP.
func oneBinaryRequest(c *kvclient.Client, m *mixConsts, r *rng.Rand) error {
	key := m.zipf.Next(r)
	switch p := r.Intn(100); {
	case p < m.readPct:
		_, _, err := c.Get(key)
		return err
	case p < m.readPct+m.casPct:
		// Optimistic RMW over the wire: read, then CAS once.
		cur, found, err := c.Get(key)
		if err != nil {
			return err
		}
		if !found {
			_, err := c.Put(key, 1)
			return err
		}
		_, err = c.CAS(key, cur, cur+1)
		return err
	case p < m.readPct+m.casPct+m.batch:
		ops := make([]kvproto.BatchOp, m.bsize)
		for i := range ops {
			ops[i] = kvproto.BatchOp{Op: kvproto.OpAdd, Key: m.zipf.Next(r), Val: 1}
		}
		_, err := c.Batch(ops)
		return err
	default:
		_, err := c.Put(key, r.Uint64()%100000)
		return err
	}
}

func get(c *http.Client, base string, key uint64) error {
	resp, err := c.Get(fmt.Sprintf("%s/kv/%d", base, key))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		return statusError{method: "GET", path: fmt.Sprintf("/kv/%d", key),
			status: resp.Status, code: resp.StatusCode}
	}
	return nil
}

func put(c *http.Client, base string, key, val uint64) error {
	req, err := http.NewRequest(http.MethodPut,
		fmt.Sprintf("%s/kv/%d", base, key), bytes.NewReader([]byte(fmt.Sprint(val))))
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return drain(resp)
}

// drain consumes and closes a response body, failing on non-2xx.
func drain(resp *http.Response) error {
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return statusError{method: resp.Request.Method, path: resp.Request.URL.Path,
			status: resp.Status, code: resp.StatusCode}
	}
	return nil
}

// decodeOK decodes a 200 JSON body into out, erroring otherwise.
func decodeOK(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return statusError{method: resp.Request.Method, path: resp.Request.URL.Path,
			status: resp.Status, code: resp.StatusCode}
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, out)
}
