// Command stmkv-loadgen drives a running stmkvd with open-loop,
// Zipf-skewed, service-shaped traffic: requests are issued on a fixed
// arrival schedule (-rate) regardless of response times, the way real
// users arrive, so a slow server configuration shows up as queueing
// latency and shed load instead of silently lowering the offered rate.
//
// The key popularity follows a Zipfian distribution (-theta; 0 uniform,
// 0.99 heavily skewed), the operation mix splits between reads, CAS
// read-modify-writes, multi-key atomic batches and plain writes, and
// -shift flips to a second mix (-read2/-theta2) halfway through the run —
// the phase change the server's autotuner must re-adapt to.
//
// Connection failures and 503s are retried with capped exponential
// backoff (~15s window), so a run rides through a server restart — kill
// the daemon mid-load, restart it, and the summary's retries count shows
// how much traffic waited out the WAL replay.
//
// Examples:
//
//	stmkv-loadgen -addr http://localhost:8080 -rate 5000 -duration 30s
//	stmkv-loadgen -rate 2000 -theta 0.99 -read 95          # hot read-mostly
//	stmkv-loadgen -shift -read 90 -read2 30 -theta2 0.5    # mid-run phase flip
//	stmkv-loadgen -min-ops 10000                           # CI gate: exit 1 if fewer complete
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sync/atomic"
	"syscall"
	"time"

	"strings"

	"tinystm/internal/harness"
	"tinystm/internal/kvclient"
	"tinystm/internal/kvproto"
	"tinystm/internal/rng"
)

type mixConsts struct {
	zipf    *rng.Zipf
	readPct int
	casPct  int
	batch   int
	bsize   int
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("stmkv-loadgen: ")

	var (
		addr     = flag.String("addr", "http://localhost:8080", "stmkvd base URL (with -proto binary: host:port of -proto-addr)")
		proto    = flag.String("proto", "http", "wire surface: http (JSON) or binary (pipelined kvproto)")
		conns    = flag.Int("conns", 1, "binary-protocol connections; workers round-robin over them (with -proto binary)")
		rate     = flag.Float64("rate", 5000, "arrival rate, requests/second")
		duration = flag.Duration("duration", 10*time.Second, "length of the arrival schedule")
		workers  = flag.Int("workers", 32, "request concurrency")
		queue    = flag.Int("queue", 0, "arrival queue bound (0 = 4x workers); overflow is shed")
		keys     = flag.Uint64("keys", 4096, "keyspace size")
		theta    = flag.Float64("theta", 0.9, "Zipfian key skew in [0,1)")
		readPct  = flag.Int("read", 80, "percent single-key GETs")
		casPct   = flag.Int("cas", 5, "percent CAS read-modify-writes")
		batchPct = flag.Int("batch", 5, "percent multi-key atomic batches")
		bsize    = flag.Int("batch-size", 4, "keys per batch")
		shift    = flag.Bool("shift", false, "flip to the phase-2 mix halfway through")
		readPct2 = flag.Int("read2", 20, "phase-2 percent reads (with -shift)")
		theta2   = flag.Float64("theta2", 0.99, "phase-2 Zipfian skew (with -shift)")
		preload  = flag.Bool("preload", true, "PUT every key once before the timed run")
		seed     = flag.Uint64("seed", 42, "workload seed")
		minOps   = flag.Uint64("min-ops", 0, "exit 1 unless at least this many requests complete")
	)
	flag.Parse()

	checkMix := func(phase string, read int, theta float64) {
		if read < 0 || *casPct < 0 || *batchPct < 0 || read+*casPct+*batchPct > 100 {
			log.Fatalf("%s mix invalid: read=%d cas=%d batch=%d must be >= 0 and sum <= 100",
				phase, read, *casPct, *batchPct)
		}
		if theta < 0 || theta >= 1 {
			log.Fatalf("%s theta (%v) must be in [0, 1)", phase, theta)
		}
	}
	checkMix("phase-1", *readPct, *theta)
	if *shift {
		checkMix("phase-2", *readPct2, *theta2)
	}
	if *keys == 0 || *rate <= 0 || *workers <= 0 || *bsize <= 0 || *conns <= 0 {
		log.Fatal("-keys, -rate, -workers, -batch-size and -conns must be positive")
	}

	// doOp issues one mixed operation over the selected surface; the
	// worker id spreads binary traffic round-robin over the connections.
	var doOp func(m *mixConsts, r *rng.Rand, worker int) error
	var preloadOp func(key, val uint64) error
	switch *proto {
	case "http":
		client := &http.Client{Transport: &http.Transport{
			MaxIdleConns: 4 * *workers, MaxIdleConnsPerHost: 4 * *workers,
		}}
		doOp = func(m *mixConsts, r *rng.Rand, _ int) error {
			return oneRequest(client, *addr, m, r)
		}
		preloadOp = func(key, val uint64) error { return put(client, *addr, key, val) }
	case "binary":
		target := strings.TrimPrefix(*addr, "http://")
		clients := make([]*kvclient.Client, *conns)
		for i := range clients {
			clients[i] = kvclient.New(target, kvclient.Options{})
			defer clients[i].Close()
		}
		doOp = func(m *mixConsts, r *rng.Rand, worker int) error {
			return oneBinaryRequest(clients[worker%len(clients)], m, r)
		}
		preloadOp = func(key, val uint64) error {
			_, err := clients[0].Put(key, val)
			return err
		}
	default:
		log.Fatalf("-proto %q: want http or binary", *proto)
	}

	if *preload {
		r := rng.New(*seed)
		for k := uint64(0); k < *keys; k++ {
			k := k
			v := r.Uint64() % 1000
			if err := withRetry(func() error { return preloadOp(k, v) }); err != nil {
				log.Fatalf("preload key %d: %v", k, err)
			}
		}
		log.Printf("preloaded %d keys", *keys)
	}

	phase1 := mixConsts{zipf: rng.NewZipf(*keys, *theta), readPct: *readPct,
		casPct: *casPct, batch: *batchPct, bsize: *bsize}
	phase2 := phase1
	if *shift {
		phase2 = mixConsts{zipf: rng.NewZipf(*keys, *theta2), readPct: *readPct2,
			casPct: *casPct, batch: *batchPct, bsize: *bsize}
	}
	//stm:allow-atomic client-side phase flip; the loadgen process runs no STM
	var phase atomic.Pointer[mixConsts]
	phase.Store(&phase1)
	if *shift {
		time.AfterFunc(*duration/2, func() {
			phase.Store(&phase2)
			log.Printf("phase shift: read %d%%->%d%% theta %.2f->%.2f",
				*readPct, *readPct2, *theta, *theta2)
		})
	}

	res := harness.OpenLoop{
		Rate: *rate, Duration: *duration, Workers: *workers, Queue: *queue, Seed: *seed,
		NewOp: func(w *harness.Worker) (func(*harness.Worker) error, func()) {
			return func(w *harness.Worker) error {
				return withRetry(func() error {
					return doOp(phase.Load(), w.Rng, w.ID)
				})
			}, nil
		},
	}.Run()

	log.Printf("offered=%d completed=%d dropped=%d errors=%d retries=%d",
		res.Offered, res.Completed, res.Dropped, res.Errors, retries.Load())
	log.Printf("throughput=%.0f req/s goodput=%.0f req/s latency p50=%v p95=%v p99=%v max=%v",
		res.Throughput, res.Goodput, res.P50, res.P95, res.P99, res.Max)
	if *minOps > 0 && res.Completed < *minOps {
		log.Printf("FAIL: completed %d < min-ops %d", res.Completed, *minOps)
		os.Exit(1)
	}
	if res.Completed > 0 && res.Errors == res.Completed {
		log.Print("FAIL: every request errored")
		os.Exit(1)
	}
}

// retries counts request attempts that failed retryably and were retried
// — the measure of how much of a server restart the run rode through.
//
//stm:allow-atomic client-side counter shared by request goroutines; no STM here
var retries atomic.Uint64

// statusError is a non-2xx HTTP response, kept typed so the retry policy
// can distinguish "server temporarily unavailable" from a real failure.
type statusError struct {
	method, path, status string
	code                 int
}

func (e statusError) Error() string {
	return fmt.Sprintf("%s %s: %s", e.method, e.path, e.status)
}

// retryable reports whether an error is worth retrying: the connection
// died (server killed or restarting — refused, reset, or cut mid-reply)
// or the server answered 503 (WAL replay, degraded mode, shutdown). Any
// other failure propagates immediately.
func retryable(err error) bool {
	var se statusError
	if errors.As(err, &se) {
		return se.code == http.StatusServiceUnavailable
	}
	// Binary-surface analogues: StatusUnavailable is the 503, a broken
	// connection redials on the next attempt.
	if errors.Is(err, kvclient.ErrUnavailable) || errors.Is(err, kvclient.ErrConn) {
		return true
	}
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// withRetry runs fn, retrying retryable failures with exponential backoff
// (50ms doubling, capped at 1s) up to maxAttempts — a window of ~15s,
// enough to ride out a server restart plus WAL replay mid-load.
func withRetry(fn func() error) error {
	const (
		maxAttempts = 16
		maxBackoff  = time.Second
	)
	backoff := 50 * time.Millisecond
	for attempt := 1; ; attempt++ {
		err := fn()
		if err == nil || attempt >= maxAttempts || !retryable(err) {
			return err
		}
		retries.Add(1)
		time.Sleep(backoff)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// oneRequest performs one mixed operation against the server.
func oneRequest(c *http.Client, base string, m *mixConsts, r *rng.Rand) error {
	key := m.zipf.Next(r)
	switch p := r.Intn(100); {
	case p < m.readPct:
		return get(c, base, key)
	case p < m.readPct+m.casPct:
		// Optimistic RMW over the wire: read, then CAS once.
		resp, err := c.Get(fmt.Sprintf("%s/kv/%d", base, key))
		if err != nil {
			return err
		}
		var cur struct{ Val uint64 }
		err = decodeOK(resp, &cur)
		if err != nil {
			return put(c, base, key, 1) // absent: seed it
		}
		body := fmt.Sprintf(`{"old":%d,"new":%d}`, cur.Val, cur.Val+1)
		resp, err = c.Post(fmt.Sprintf("%s/kv/%d/cas", base, key), "application/json",
			bytes.NewReader([]byte(body)))
		if err != nil {
			return err
		}
		return drain(resp)
	case p < m.readPct+m.casPct+m.batch:
		var b bytes.Buffer
		b.WriteString(`{"ops":[`)
		for i := 0; i < m.bsize; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `{"op":"add","key":%d,"val":1}`, m.zipf.Next(r))
		}
		b.WriteString(`]}`)
		resp, err := c.Post(base+"/batch", "application/json", &b)
		if err != nil {
			return err
		}
		return drain(resp)
	default:
		return put(c, base, key, r.Uint64()%100000)
	}
}

// oneBinaryRequest performs one mixed operation over the pipelined
// binary protocol — the same mix shape as oneRequest, minus HTTP.
func oneBinaryRequest(c *kvclient.Client, m *mixConsts, r *rng.Rand) error {
	key := m.zipf.Next(r)
	switch p := r.Intn(100); {
	case p < m.readPct:
		_, _, err := c.Get(key)
		return err
	case p < m.readPct+m.casPct:
		// Optimistic RMW over the wire: read, then CAS once.
		cur, found, err := c.Get(key)
		if err != nil {
			return err
		}
		if !found {
			_, err := c.Put(key, 1)
			return err
		}
		_, err = c.CAS(key, cur, cur+1)
		return err
	case p < m.readPct+m.casPct+m.batch:
		ops := make([]kvproto.BatchOp, m.bsize)
		for i := range ops {
			ops[i] = kvproto.BatchOp{Op: kvproto.OpAdd, Key: m.zipf.Next(r), Val: 1}
		}
		_, err := c.Batch(ops)
		return err
	default:
		_, err := c.Put(key, r.Uint64()%100000)
		return err
	}
}

func get(c *http.Client, base string, key uint64) error {
	resp, err := c.Get(fmt.Sprintf("%s/kv/%d", base, key))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		return statusError{method: "GET", path: fmt.Sprintf("/kv/%d", key),
			status: resp.Status, code: resp.StatusCode}
	}
	return nil
}

func put(c *http.Client, base string, key, val uint64) error {
	req, err := http.NewRequest(http.MethodPut,
		fmt.Sprintf("%s/kv/%d", base, key), bytes.NewReader([]byte(fmt.Sprint(val))))
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return drain(resp)
}

// drain consumes and closes a response body, failing on non-2xx.
func drain(resp *http.Response) error {
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return statusError{method: resp.Request.Method, path: resp.Request.URL.Path,
			status: resp.Status, code: resp.StatusCode}
	}
	return nil
}

// decodeOK decodes a 200 JSON body into out, erroring otherwise.
func decodeOK(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return statusError{method: resp.Request.Method, path: resp.Request.URL.Path,
			status: resp.Status, code: resp.StatusCode}
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, out)
}
