// Command stmlint runs the STM invariant analyzers over Go packages.
//
//	go run ./cmd/stmlint ./...          # whole tree
//	go run ./cmd/stmlint -run txbody ./internal/kvstore
//	go run ./cmd/stmlint -list          # describe the analyzers
//
// Exit status: 0 clean, 1 findings, 2 load or internal errors. Findings
// are suppressed by an //stm:allow-<marker> annotation on (or directly
// above) the offending line; a stale annotation is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tinystm/internal/analysis/framework"
	"tinystm/internal/analysis/stmlint"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		list    = flag.Bool("list", false, "describe the registered analyzers and exit")
		run     = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		noTests = flag.Bool("notests", false, "exclude _test.go files and external test packages")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: stmlint [-list] [-run a,b] [-notests] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := stmlint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s //stm:allow-%-10s %s\n", a.Name, a.Marker, a.Doc)
		}
		return 0
	}
	if *run != "" {
		var picked []*framework.Analyzer
		for _, name := range strings.Split(*run, ",") {
			a := stmlint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "stmlint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmlint:", err)
		return 2
	}
	loader := framework.NewLoader(wd)
	loader.IncludeTests = !*noTests
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmlint:", err)
		return 2
	}

	var findings []framework.Finding
	loadErrors := 0
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			// A package that does not type-check cannot be analyzed
			// soundly; surface the first error and fail hard.
			fmt.Fprintf(os.Stderr, "stmlint: %s: %v\n", pkg.PkgPath, pkg.TypeErrors[0])
			loadErrors++
			continue
		}
		fs, err := framework.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stmlint: %s: %v\n", pkg.PkgPath, err)
			loadErrors++
			continue
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, f := range findings {
		pos := f.Position
		if rel, err := filepath.Rel(wd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", pos.Filename, pos.Line, pos.Column, f.Message, f.Analyzer)
	}
	switch {
	case loadErrors > 0:
		return 2
	case len(findings) > 0:
		return 1
	}
	return 0
}
