// Command benchjson converts `go test -bench` output (stdin) into a JSON
// benchmark artifact (stdout): CI runs the short benchmark suite on every
// push and uploads one BENCH_<sha>.json per commit, so the repository's
// performance trajectory is a series of machine-readable artifacts instead
// of scrollback. The raw benchmark lines are preserved verbatim in the
// "raw" field, so `benchstat old.txt new.txt` comparisons can be
// regenerated from any two artifacts (benchstat consumes the text format):
//
//	jq -r '.raw[]' BENCH_abc.json > old.txt
//	jq -r '.raw[]' BENCH_def.json > new.txt
//	benchstat old.txt new.txt
//
// Usage:
//
//	go test -bench=. -benchtime=1x ./... | benchjson -sha $GITHUB_SHA > BENCH_$GITHUB_SHA.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name including the -N GOMAXPROCS
	// suffix, as printed (the benchstat key).
	Name string `json:"name"`
	// Iterations is b.N for the run.
	Iterations uint64 `json:"iterations"`
	// Metrics maps unit -> value for every "value unit" pair on the
	// line: ns/op, B/op, allocs/op and any b.ReportMetric custom units
	// (this repository reports txs/s).
	Metrics map[string]float64 `json:"metrics"`
}

// Artifact is the JSON document: provenance plus parsed results plus the
// verbatim benchmark lines.
type Artifact struct {
	SHA      string      `json:"sha,omitempty"`
	Ref      string      `json:"ref,omitempty"`
	Date     string      `json:"date"`
	GoOS     string      `json:"goos"`
	GoArch   string      `json:"goarch"`
	GoVer    string      `json:"go"`
	Packages []string    `json:"packages,omitempty"`
	Results  []Benchmark `json:"benchmarks"`
	Raw      []string    `json:"raw"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		sha = flag.String("sha", os.Getenv("GITHUB_SHA"), "commit SHA recorded in the artifact")
		ref = flag.String("ref", os.Getenv("GITHUB_REF"), "git ref recorded in the artifact")
	)
	flag.Parse()

	art := Artifact{
		SHA:    *sha,
		Ref:    *ref,
		Date:   time.Now().UTC().Format(time.RFC3339),
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		GoVer:  runtime.Version(),
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				art.Results = append(art.Results, b)
				art.Raw = append(art.Raw, line)
			}
		case strings.HasPrefix(line, "pkg:"):
			art.Packages = append(art.Packages, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
			art.Raw = append(art.Raw, line)
		case strings.HasPrefix(line, "goos:") || strings.HasPrefix(line, "goarch:") ||
			strings.HasPrefix(line, "cpu:"):
			art.Raw = append(art.Raw, line)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(art.Results) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks from %d packages\n",
		len(art.Results), len(art.Packages))
}

// parseBenchLine parses one "BenchmarkName-8  100  123 ns/op  4 B/op ..."
// line. Returns ok=false for lines that merely start with "Benchmark" but
// are not results (e.g. failure chatter).
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
