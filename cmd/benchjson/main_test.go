package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkCommitClockSerial/fetchinc-8   \t 1000000\t        88.4 ns/op")
	if !ok || b.Name != "BenchmarkCommitClockSerial/fetchinc-8" || b.Iterations != 1000000 {
		t.Fatalf("basic line: %+v ok=%v", b, ok)
	}
	if b.Metrics["ns/op"] != 88.4 {
		t.Fatalf("ns/op = %v", b.Metrics["ns/op"])
	}

	b, ok = parseBenchLine("BenchmarkFig02RBTree256u20-2 1 70875021 ns/op 132185 txs/s 41 B/op 2 allocs/op")
	if !ok || len(b.Metrics) != 4 || b.Metrics["txs/s"] != 132185 || b.Metrics["allocs/op"] != 2 {
		t.Fatalf("custom-metric line: %+v ok=%v", b, ok)
	}

	for _, bad := range []string{
		"BenchmarkBroken",
		"BenchmarkOdd-8 100 12", // metric without unit
		"BenchmarkNaN-8 x 12 ns/op",
		"goos: linux",
	} {
		if _, ok := parseBenchLine(bad); ok {
			t.Errorf("accepted %q", bad)
		}
	}
}
