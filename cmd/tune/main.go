// Command tune reproduces the dynamic-tuning experiments (Figures 10, 11
// and 12): a hill-climbing tuner adjusts (#locks, #shifts, h) on a live
// TinySTM while the workload runs, printing the configuration path, the
// throughput trace, and the validation fast-path counters.
//
// Examples:
//
//	tune -b rbtree                  # Figure 10
//	tune -b list                    # Figure 11 (+ Figure 12 table)
//	tune -b list -periods 40 -period 1s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"tinystm/internal/cliutil"
	"tinystm/internal/cm"
	"tinystm/internal/core"
	"tinystm/internal/experiments"
	"tinystm/internal/harness"
	"tinystm/internal/tuning"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tune: ")

	var (
		bench    = flag.String("b", "rbtree", "structure (list, rbtree, skiplist, hashset)")
		size     = flag.Int("size", 4096, "initial elements")
		update   = flag.Int("update", 20, "update percentage")
		threads  = flag.Int("threads", 8, "worker threads")
		periods  = flag.Int("periods", 40, "tuning periods (configurations)")
		period   = flag.Duration("period", time.Second, "measurement interval")
		samples  = flag.Int("samples", 3, "samples per configuration (max used)")
		startExp = flag.Int("start-locks", 8, "initial lock exponent (paper: 8)")
		seed     = flag.Uint64("seed", 42, "seed")
		quick    = flag.Bool("quick", false, "milliseconds-scale smoke run")
		yield    = flag.Int("yield", 0, "yield after every N loads (multi-core interleaving simulation; 0 = off)")
		cmFlag   = flag.String("cm", "suicide", "contention-management policy (suicide, backoff, karma, timestamp, serializer)")
		csv      = flag.Bool("csv", false, "CSV output")
	)
	flag.Parse()

	kind, err := cliutil.ParseKind(*bench)
	if err != nil {
		log.Fatal(err)
	}
	ck, err := cm.ParseKind(*cmFlag)
	if err != nil {
		log.Fatal(err)
	}
	sc := experiments.PaperScale()
	sc.Seed = *seed
	if *quick {
		sc = experiments.QuickScale()
		*period = 10 * time.Millisecond
		if *periods > 12 {
			*periods = 12
		}
		*threads = 2
	}
	sc.YieldEvery = *yield
	sc.CM = ck

	tc := experiments.TuneConfig{
		Kind: kind, Size: *size, UpdatePct: *update,
		Threads: *threads, Periods: *periods, Period: *period,
		SamplesPerConfig: *samples,
		Start:            core.Params{Locks: 1 << *startExp, Shifts: 0, Hier: 1},
		Bounds:           tuning.DefaultBounds(),
		Seed:             *seed,
	}
	r := experiments.RunTuning(sc, tc)

	emit := func(tbl harness.Table) {
		if *csv {
			tbl.RenderCSV(os.Stdout)
		} else {
			tbl.Render(os.Stdout)
		}
		fmt.Println()
	}
	title := fmt.Sprintf("Figure 10/11: auto-tuning, %v, size=%d, threads=%d", kind, *size, *threads)
	emit(r.TraceTable(title))
	emit(r.ValidationTable())
	fmt.Printf("final configuration: %v\n", r.Final)
	fmt.Printf("best configuration:  %v at %.1f x10^3 txs/s\n", r.Best, r.BestTp/1000)
}
