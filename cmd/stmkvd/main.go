// Command stmkvd serves the STM-backed key-value store over HTTP with the
// online tuning runtime attached: while traffic flows, the runtime meters
// live commit throughput and re-adapts the TM's lock-table geometry
// (#locks, #shifts, h) to it.
//
// Examples:
//
//	stmkvd                                   # listen on :8080, autotune on
//	stmkvd -addr :9000 -geometry 2^16,0,1    # start at the paper's default
//	stmkvd -autotune=false -design wt        # static write-through server
//	stmkvd -period 200ms -samples 1          # fast tuning cadence (demos, CI)
//	stmkvd -durability group -wal-dir /var/lib/stmkvd
//	                                         # crash-safe: acks after group fsync,
//	                                         # replays the WAL on restart
//	stmkvd -proto-addr :8081 -admission 64   # binary pipelined protocol with a
//	                                         # tuned update-admission gate
//	stmkvd -brownout-slo 50ms                # brownout: shed scans, then writes,
//	                                         # then reads whenever p99 > 50ms
//
// Both listen addresses accept :0 for an ephemeral port; the actual
// bound addresses are logged as "http listening on ..." / "proto
// listening on ..." so scripts can parse them.
//
// Endpoints: GET/PUT/DELETE /kv/{key}, POST /kv/{key}/cas, POST
// /kv/{key}/add, POST /batch, GET /stats, GET /tuning, GET /metrics
// (Prometheus text format), GET /debug/txtrace (sampled transaction
// flight recorder), GET /healthz, GET /readyz. Keys and values are
// uint64; see internal/kvserver for wire
// formats. The binary surface (-proto-addr) carries the same operations
// over the kvproto framing, pipelined; see internal/kvproto. Drive either
// with cmd/stmkv-loadgen and watch /tuning re-adapt.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tinystm/internal/cliutil"
	"tinystm/internal/cm"
	"tinystm/internal/core"
	"tinystm/internal/kvserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stmkvd: ")

	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address (:0 for an ephemeral port)")
		protoAddr = flag.String("proto-addr", "", "binary kvproto listen address (empty = HTTP only; :0 for an ephemeral port)")
		admWidth  = flag.Int("admission", 0, "admission gate width: max concurrent update transactions on both surfaces (0 = ungated)")
		tuneAdm   = flag.Bool("tune-admission", true, "let the tuning runtime walk the admission width live (needs -autotune and -admission > 0)")
		space     = flag.Int("space", 1<<22, "transactional arena size in 64-bit words")
		shards    = flag.Uint64("shards", 16, "store shards (power of two)")
		buckets   = flag.Uint64("buckets", 64, "initial buckets per shard (power of two)")
		design    = flag.String("design", "wb", "memory design: wb (write-back) or wt (write-through)")
		clock     = flag.String("clock", "fetchinc", "commit-clock strategy: fetchinc, lazy, ticket")
		geometry  = flag.String("geometry", "2^8,0,1", "initial lock-table triple locks,shifts,h (accepts 2^k)")
		cmFlag    = flag.String("cm", "suicide", "initial contention-management policy: suicide, backoff, karma, timestamp, serializer")
		tuneCM    = flag.Bool("tune-cm", true, "let the tuning runtime switch the contention-management policy live (needs -autotune)")
		snaps     = flag.Bool("snapshots", true, "attach the MVCC sidecar: /scan, all-Get /batch and Len run as wait-free snapshot transactions")
		snapBudg  = flag.Int("snap-budget", 0, "initial per-shard version budget for the sidecar (0 = mvcc default)")
		tuneSnap  = flag.Bool("tune-snapshots", true, "let the tuning runtime walk the version budget live (needs -autotune and -snapshots)")
		autotune  = flag.Bool("autotune", true, "attach the online tuning runtime")
		period    = flag.Duration("period", time.Second, "tuning sample period")
		samples   = flag.Int("samples", 3, "samples per tuning decision (max kept)")
		minc      = flag.Uint64("min-commits", 1, "pause tuning below this many commits per period")
		seed      = flag.Uint64("seed", 42, "tuner move-selection seed")
		durab     = flag.String("durability", "off", "write-ahead-log ack mode: off, async, group (needs -wal-dir)")
		walDir    = flag.String("wal-dir", "", "write-ahead-log directory (segments and checkpoints)")
		walBatch  = flag.Duration("wal-batch", 0, "WAL group-commit batch delay (0 = flush immediately)")
		ckptEvry  = flag.Duration("checkpoint-every", 30*time.Second, "snapshot-checkpoint period for WAL truncation (0 = never)")
		brownSLO  = flag.Duration("brownout-slo", 0, "request-latency p99 SLO: when exceeded the tuning runtime sheds scans, then writes, then reads until calm (0 = off; needs -autotune)")
		txTrace   = flag.Int("txtrace", 0, "flight-recorder sampling: trace one transaction in N (0 = default 64, negative = off)")
		debugAddr = flag.String("debug-addr", "", "separate net/http/pprof listen address (empty = no pprof)")
	)
	flag.Parse()

	d, err := cliutil.ParseDesign(*design)
	if err != nil {
		log.Fatal(err)
	}
	cs, err := core.ParseClockStrategy(*clock)
	if err != nil {
		log.Fatal(err)
	}
	geo, err := cliutil.ParseParams(*geometry)
	if err != nil {
		log.Fatal(err)
	}
	ck, err := cm.ParseKind(*cmFlag)
	if err != nil {
		log.Fatal(err)
	}
	dmode, err := kvserver.ParseDurability(*durab)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := kvserver.New(kvserver.Config{
		SpaceWords:       *space,
		Shards:           *shards,
		Buckets:          *buckets,
		Design:           d,
		Clock:            cs,
		Geometry:         geo,
		CM:               ck,
		Snapshots:        *snaps,
		SnapshotBudget:   *snapBudg,
		Autotune:         *autotune,
		TuneCM:           *autotune && *tuneCM,
		TuneSnapshots:    *autotune && *tuneSnap && *snaps,
		AdmissionWidth:   *admWidth,
		TuneAdmission:    *autotune && *tuneAdm && *admWidth > 0,
		BrownoutSLO:      *brownSLO,
		Period:           *period,
		Samples:          *samples,
		MinPeriodCommits: *minc,
		Seed:             *seed,
		Durability:       dmode,
		WALDir:           *walDir,
		WALBatch:         *walBatch,
		CheckpointEvery:  *ckptEvry,
		TxTraceEvery:     *txTrace,
	})
	if err != nil {
		log.Fatal(err)
	}

	if dmode != kvserver.DurabilityOff {
		// Recovery runs in the background ( /healthz answers, /readyz is
		// 503 meanwhile), but a recovery FAILURE — mid-log corruption, an
		// unwritable directory — must kill the process loudly rather than
		// leave a zombie that 503s forever.
		go func() {
			if err := srv.RecoveryWait(); err != nil {
				log.Fatalf("wal recovery failed: %v", err)
			}
			log.Printf("wal recovery complete, serving (mode=%s dir=%s)", dmode, *walDir)
		}()
	}

	if *debugAddr != "" {
		// pprof on its own listener: profiling stays off the data port
		// (and off the data port's lifecycle gate) so it can never be
		// exposed by accident, only by flag.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("pprof listening on %s", dl.Addr())
		go func() {
			if err := http.Serve(dl, dmux); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	// Listen before serving so :0 resolves to a concrete port and scripts
	// can parse the bound addresses from the log.
	hl, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	var pl net.Listener
	if *protoAddr != "" {
		pl, err = net.Listen("tcp", *protoAddr)
		if err != nil {
			log.Fatal(err)
		}
	}

	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Println("shutting down")
		if pl != nil {
			_ = pl.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}()

	log.Printf("serving on %s (design=%v clock=%v geometry=%v cm=%v snapshots=%v autotune=%v tune-cm=%v tune-snapshots=%v admission=%d tune-admission=%v brownout-slo=%v period=%v)",
		hl.Addr(), d, cs, geo, ck, *snaps, *autotune, *autotune && *tuneCM, *autotune && *tuneSnap && *snaps,
		*admWidth, *autotune && *tuneAdm && *admWidth > 0, *brownSLO, *period)
	log.Printf("http listening on %s", hl.Addr())
	if pl != nil {
		log.Printf("proto listening on %s", pl.Addr())
		go func() {
			if err := srv.ServeProto(pl); err != nil {
				log.Fatalf("proto listener: %v", err)
			}
		}()
	}
	if err := hs.Serve(hl); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done

	// Final report: where the tuner went and what the TM saw.
	st := srv.TM().Stats()
	log.Printf("final: params=%v cm=%v commits=%d aborts=%d reconfigs=%d cm-switches=%d keys=%d",
		srv.TM().Params(), srv.TM().CM(), st.Commits, st.Aborts, st.Reconfigs, st.CMSwitches, srv.Store().Len())
	if rt := srv.Runtime(); rt != nil {
		best, tp := rt.Best()
		log.Printf("tuner: best=%v at %.0f txs/s over %d periods", best, tp, len(rt.Trace()))
		for _, ev := range rt.Trace() {
			fmt.Println("  " + ev.String())
		}
	}
	// Flight-recorder tail: the last sampled transactions before shutdown
	// (crash forensics for the run that just ended).
	if evs := srv.TxTrace(16); len(evs) > 0 {
		log.Printf("txtrace: last %d sampled transactions:", len(evs))
		for _, e := range evs {
			fmt.Println("  " + e.String())
		}
	}
	srv.Close()
}
