// Package tinystm's root benchmark harness: one testing.B benchmark per
// figure of the paper's evaluation. Each benchmark executes the
// corresponding experiment runner from internal/experiments at a reduced
// scale and reports the headline throughput as a custom metric
// (txs/sec). For paper-scale runs use the CLI tools (cmd/stmbench,
// cmd/sweep, cmd/tune, cmd/vacation); both paths share all experiment
// code, so the benchmarks double as end-to-end regression checks for
// every figure.
package tinystm

import (
	"testing"
	"time"

	"tinystm/internal/core"
	"tinystm/internal/experiments"
	"tinystm/internal/harness"
	"tinystm/internal/tuning"
	"tinystm/internal/vacation"
)

// benchScale keeps each figure reproduction around a hundred
// milliseconds so `go test -bench=.` finishes promptly.
func benchScale() experiments.Scale {
	return experiments.Scale{
		Duration:   20 * time.Millisecond,
		Warmup:     5 * time.Millisecond,
		Threads:    []int{1, 2},
		Seed:       42,
		SpaceWords: 1 << 20,
	}
}

// lastPoint extracts the highest-thread TinySTM-WB value of a series.
func lastPoint(r experiments.ThreadSeries) float64 {
	return r.Values[len(r.Values)-1][0]
}

func BenchmarkFig02RBTree256u20(b *testing.B) {
	sc := benchScale()
	var tp float64
	for i := 0; i < b.N; i++ {
		tp = lastPoint(experiments.Figure2(sc, 256, 20))
	}
	b.ReportMetric(tp, "txs/s")
}

func BenchmarkFig02RBTree4096u20(b *testing.B) {
	sc := benchScale()
	var tp float64
	for i := 0; i < b.N; i++ {
		tp = lastPoint(experiments.Figure2(sc, 4096, 20))
	}
	b.ReportMetric(tp, "txs/s")
}

func BenchmarkFig02RBTree4096u60(b *testing.B) {
	sc := benchScale()
	var tp float64
	for i := 0; i < b.N; i++ {
		tp = lastPoint(experiments.Figure2(sc, 4096, 60))
	}
	b.ReportMetric(tp, "txs/s")
}

func BenchmarkFig03List256u0(b *testing.B) {
	sc := benchScale()
	var tp float64
	for i := 0; i < b.N; i++ {
		tp = lastPoint(experiments.Figure3(sc, 256, 0))
	}
	b.ReportMetric(tp, "txs/s")
}

func BenchmarkFig03List256u20(b *testing.B) {
	sc := benchScale()
	var tp float64
	for i := 0; i < b.N; i++ {
		tp = lastPoint(experiments.Figure3(sc, 256, 20))
	}
	b.ReportMetric(tp, "txs/s")
}

func BenchmarkFig03List4096u20(b *testing.B) {
	sc := benchScale()
	var tp float64
	for i := 0; i < b.N; i++ {
		tp = lastPoint(experiments.Figure3(sc, 4096, 20))
	}
	b.ReportMetric(tp, "txs/s")
}

func BenchmarkFig04AbortsRBTree(b *testing.B) {
	sc := benchScale()
	sc.YieldEvery = 4 // conflicts need interleaving on few-core hosts
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = lastPoint(experiments.Figure4Aborts(sc, harness.KindRBTree, 4096, 20))
	}
	b.ReportMetric(rate, "aborts/s")
}

func BenchmarkFig04AbortsList(b *testing.B) {
	sc := benchScale()
	sc.YieldEvery = 4
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = lastPoint(experiments.Figure4Aborts(sc, harness.KindList, 256, 20))
	}
	b.ReportMetric(rate, "aborts/s")
}

func BenchmarkFig04Overwrite(b *testing.B) {
	sc := benchScale()
	sc.Duration = 40 * time.Millisecond // abort-heavy: ensure commits land
	var tp float64
	for i := 0; i < b.N; i++ {
		tp = lastPoint(experiments.Figure4Overwrite(sc, 256, 5))
	}
	b.ReportMetric(tp, "txs/s")
}

func BenchmarkFig05SizeUpdateSurface(b *testing.B) {
	sc := benchScale()
	var tp float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure5(sc, harness.KindRBTree, []int{256, 1024}, []int{0, 20})
		tp = r.Values[0][0][0]
	}
	b.ReportMetric(tp, "txs/s")
}

func BenchmarkFig06LocksShiftsSweep(b *testing.B) {
	sc := benchScale()
	var tp float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure6(sc, harness.KindRBTree, []int{8, 12}, []uint{0, 2})
		_, tp = r.Best()
	}
	b.ReportMetric(tp, "txs/s")
}

func BenchmarkFig07Vacation(b *testing.B) {
	sc := benchScale()
	sc.Duration = 40 * time.Millisecond
	vp := vacation.Params{Relations: 256, QueryPct: 90, UserPct: 80, QueriesPerTx: 2}
	var tp float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure7(sc, vp, []int{12, 14}, []uint{0, 2})
		_, tp = r.Best()
	}
	b.ReportMetric(tp, "txs/s")
}

func BenchmarkFig08HierSweep(b *testing.B) {
	sc := benchScale()
	var tp float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure8(sc, harness.KindList, []int{10}, []uint{0})
		_, tp = r.Best()
	}
	b.ReportMetric(tp, "txs/s")
}

func BenchmarkFig09Improvement(b *testing.B) {
	sc := benchScale()
	sc.Duration = 50 * time.Millisecond // short windows inflate min-relative %
	sc.Repeats = 2
	var max float64
	for i := 0; i < b.N; i++ {
		max = 0
		c := experiments.Figure9Locks(sc, []int{8, 12})
		for _, s := range c.Series {
			for _, v := range s {
				if v > max {
					max = v
				}
			}
		}
	}
	b.ReportMetric(max, "improvement-%")
}

// BenchmarkClockSweep exercises the commit-clock strategy dimension end
// to end (the sweep behind `stmbench -fig clock`) and reports the best
// strategy's throughput.
func BenchmarkClockSweep(b *testing.B) {
	sc := benchScale()
	ip := harness.IntsetParams{Kind: harness.KindRBTree, InitialSize: 256, UpdatePct: 20}
	geo := core.Params{Locks: 1 << 12, Shifts: 0, Hier: 1}
	var tp float64
	for i := 0; i < b.N; i++ {
		r := experiments.SweepClockStrategies(sc, core.WriteBack, geo, ip,
			core.AllClockStrategies)
		_, tp = r.Best()
	}
	b.ReportMetric(tp, "txs/s")
}

// tuneBenchScale enables interleaving so validation (and its fast path)
// actually runs during tuning benches.
func tuneBenchScale() experiments.Scale {
	sc := benchScale()
	sc.YieldEvery = 4
	return sc
}

func tuneBenchConfig(kind harness.Kind) experiments.TuneConfig {
	return experiments.TuneConfig{
		Kind: kind, Size: 256, UpdatePct: 20,
		Threads: 2, Periods: 6, Period: 5 * time.Millisecond,
		SamplesPerConfig: 2,
		Start:            core.Params{Locks: 1 << 8, Shifts: 0, Hier: 1},
		Bounds: tuning.Bounds{
			MinLocks: 1 << 6, MaxLocks: 1 << 14,
			MinShifts: 0, MaxShifts: 4, MinHier: 1, MaxHier: 64,
		},
		Seed: 42,
	}
}

func BenchmarkFig10TuningRBTree(b *testing.B) {
	sc := tuneBenchScale()
	var tp float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunTuning(sc, tuneBenchConfig(harness.KindRBTree))
		tp = r.BestTp
	}
	b.ReportMetric(tp, "txs/s")
}

func BenchmarkFig11TuningList(b *testing.B) {
	sc := tuneBenchScale()
	var tp float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunTuning(sc, tuneBenchConfig(harness.KindList))
		tp = r.BestTp
	}
	b.ReportMetric(tp, "txs/s")
}

func BenchmarkFig12ValidationCounters(b *testing.B) {
	sc := tuneBenchScale()
	var skipped float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunTuning(sc, tuneBenchConfig(harness.KindList))
		for _, v := range r.Validation {
			skipped += v.SkippedPerSec
		}
	}
	b.ReportMetric(skipped, "skipped-locks/s")
}
