// Quickstart: the smallest useful TinySTM program.
//
// It creates a transactional memory space, runs a few atomic blocks — a
// counter, a multi-word invariant, a read-only audit — and prints what
// happened. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"tinystm/internal/core"
	"tinystm/internal/mem"
)

func main() {
	// A Space is the word-addressed memory the STM protects; the TM adds
	// the versioned-lock array and global clock on top.
	space := mem.NewSpace(1 << 16)
	tm := core.MustNew(core.Config{
		Space:  space,
		Locks:  1 << 12,        // lock-array size (tunable at runtime)
		Design: core.WriteBack, // or core.WriteThrough
	})

	// Each goroutine gets one descriptor, reused across transactions, and
	// releases it when done so the TM slot can be recycled.
	tx := tm.NewTx()
	defer tx.Release()

	// Allocate two "accounts" and a counter transactionally.
	var alice, bob, counter uint64
	tm.Atomic(tx, func(tx *core.Tx) {
		alice = tx.Alloc(1)
		bob = tx.Alloc(1)
		counter = tx.Alloc(1)
		tx.Store(alice, 100)
		tx.Store(bob, 0)
	})

	// Transfer money atomically: either both stores commit or neither.
	tm.Atomic(tx, func(tx *core.Tx) {
		amount := uint64(30)
		tx.Store(alice, tx.Load(alice)-amount)
		tx.Store(bob, tx.Load(bob)+amount)
		tx.Store(counter, tx.Load(counter)+1)
	})

	// Read-only transactions skip read-set bookkeeping entirely. The body
	// only copies values out; printing happens after the commit, because a
	// body re-executes on abort and would print once per attempt.
	var a, b, transfers uint64
	tm.AtomicRO(tx, func(tx *core.Tx) {
		a, b, transfers = tx.Load(alice), tx.Load(bob), tx.Load(counter)
	})
	fmt.Printf("alice=%d bob=%d (total %d), transfers=%d\n", a, b, a+b, transfers)

	s := tm.Stats()
	fmt.Printf("commits=%d aborts=%d params=%v\n", s.Commits, s.Aborts, tm.Params())
}
