// Autotune: the paper's dynamic tuning running *inside* the system.
//
// A linked-list workload runs continuously while tuning.Runtime — a
// background controller goroutine — meters live commit throughput from the
// TM's O(1) aggregate counters, feeds the hill-climbing tuner one
// measurement per period (max of 3 samples, Section 4.3), and reconfigures
// the live TM on its own. The application only starts the runtime; no
// manual measurement loop remains. Halfway through, the workload flips
// phase (update rate up, working set down) and the controller re-adapts.
//
// The program prints one line per tuning period — a miniature Figure 11
// with a regime change in the middle. Run with:
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"time"

	"tinystm/internal/core"
	"tinystm/internal/harness"
	"tinystm/internal/mem"
	"tinystm/internal/tuning"
)

func main() {
	const (
		threads = 4
		periods = 16
		period  = 100 * time.Millisecond
	)
	// Start from a deliberately bad configuration (2^8 locks, §4.3).
	start := core.Params{Locks: 1 << 8, Shifts: 0, Hier: 1}

	space := mem.NewSpace(1 << 20)
	tm := core.MustNew(core.Config{
		Space: space, Locks: start.Locks, Shifts: start.Shifts, Hier: start.Hier,
	})

	// Two workload phases over one shared list: a read-mostly mix and a
	// hot update-heavy mix with a quarter of the working set.
	calm := harness.IntsetParams{Kind: harness.KindList, InitialSize: 1024, UpdatePct: 20}
	hot := calm
	hot.UpdatePct = 80
	hot.Range = 512
	set := harness.BuildIntset[*core.Tx](tm, calm, 7)
	phased := harness.IntsetPhases[*core.Tx](tm, set, calm, hot)
	workers := harness.StartWorkers[*core.Tx](tm, threads, 7, phased.Op())
	defer workers.Stop()

	// The runtime is the whole tuning loop: start it and watch the trace.
	trace := make(chan tuning.Event, periods+8)
	rt := tuning.NewRuntime(tm, tuning.RuntimeConfig{
		Tuner:  tuning.Config{Initial: start, Seed: 7},
		Period: period,
		Trace:  trace,
	})
	if err := rt.Start(); err != nil {
		panic(err)
	}
	for i := 0; i < periods; i++ {
		fmt.Println(<-trace)
		if i+1 == periods/2 {
			phased.SetPhase(1)
			fmt.Println("--- workload phase shift: 80% updates, half range ---")
		}
	}
	rt.Stop()

	best, tp := rt.Best()
	fmt.Printf("\nbest configuration: %v at %.0f txs/s (started at %v)\n", best, tp, start)
}
