// Autotune: the paper's dynamic tuning loop embedded in an application.
//
// A linked-list workload runs continuously while the hill-climbing tuner
// reconfigures the live TM between one-period measurements, starting from
// a deliberately bad configuration (2^8 locks, as in Section 4.3). The
// program prints one line per tuning period showing the configuration
// path and the throughput — a miniature Figure 11. Run with:
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"time"

	"tinystm/internal/core"
	"tinystm/internal/harness"
	"tinystm/internal/mem"
	"tinystm/internal/tuning"
)

func main() {
	const (
		threads = 4
		periods = 15
		period  = 100 * time.Millisecond
	)
	start := core.Params{Locks: 1 << 8, Shifts: 0, Hier: 1}

	space := mem.NewSpace(1 << 20)
	tm := core.MustNew(core.Config{
		Space: space, Locks: start.Locks, Shifts: start.Shifts, Hier: start.Hier,
	})

	ip := harness.IntsetParams{Kind: harness.KindList, InitialSize: 1024, UpdatePct: 20}
	set := harness.BuildIntset[*core.Tx](tm, ip, 7)
	workers := harness.StartWorkers[*core.Tx](tm, threads,
		7, harness.IntsetOp[*core.Tx](tm, set, ip))
	defer workers.Stop()

	tuner := tuning.New(tuning.Config{Initial: start, Seed: 7})
	meter := harness.NewMeter(tm.Stats)

	fmt.Printf("%-4s %-28s %-12s %s\n", "cfg", "params", "txs/s", "move")
	for i := 0; i < periods; i++ {
		cur := tuner.Current()
		// Three samples per configuration, keep the maximum (§4.3).
		maxTp := 0.0
		for s := 0; s < 3; s++ {
			time.Sleep(period)
			if tp, _ := meter.Sample(); tp > maxTp {
				maxTp = tp
			}
		}
		next, move := tuner.Step(maxTp)
		fmt.Printf("%-4d %-28v %-12.0f %v\n", i, cur, maxTp, move)
		if next != cur {
			if err := tm.Reconfigure(next); err != nil {
				panic(err)
			}
		}
	}
	best, tp := tuner.Best()
	fmt.Printf("\nbest configuration: %v at %.0f txs/s (started at %v)\n", best, tp, start)
}
