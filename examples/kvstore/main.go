// Example kvstore: the sharded transactional key-value map used
// in-process — multi-key atomic batches, optimistic CAS, and the
// per-shard freeze/rehash growth — with the online tuner re-adapting the
// TM underneath a phase-shifting service workload.
//
// Run: go run ./examples/kvstore
package main

import (
	"fmt"
	"time"

	"tinystm/internal/core"
	"tinystm/internal/harness"
	"tinystm/internal/kvstore"
	"tinystm/internal/mem"
	"tinystm/internal/tuning"
)

func main() {
	tm := core.MustNew(core.Config{
		Space: mem.NewSpace(1 << 20),
		Locks: 1 << 8, // deliberately bad: watch the tuner fix it
	})
	s := kvstore.NewStore[*core.Tx](tm, 8, 16)
	defer s.Close()

	// Single-key operations: each is one STM transaction.
	s.Put(1, 100)
	s.Put(2, 100)
	fmt.Println("balances:", at(s, 1), at(s, 2))

	// A transfer is one multi-key atomic batch: both Adds commit
	// together or not at all.
	s.Apply([]kvstore.Op{
		{Kind: kvstore.OpAdd, Key: 1, Val: ^uint64(29)}, // -30
		{Kind: kvstore.OpAdd, Key: 2, Val: 30},
	})
	fmt.Println("after transfer:", at(s, 1), at(s, 2))

	// Optimistic concurrency over the map: read, then CAS.
	cur, _ := s.Get(1)
	fmt.Println("CAS(1):", s.CAS(1, cur, cur*2))

	// Service-shaped load with the autotuner attached: Zipf-skewed keys,
	// mixed ops, and a calm-to-hot phase flip halfway through.
	rt := tuning.NewRuntime(tm, tuning.RuntimeConfig{
		Period: 50 * time.Millisecond, Samples: 1,
	})
	if err := rt.Start(); err != nil {
		panic(err)
	}
	m := s.Map()
	kvstore.Preload[*core.Tx](tm, m, 2048, 1)
	calm := kvstore.MixOp[*core.Tx](tm, m, kvstore.Mix{Keys: 2048, Theta: 0.5, ReadPct: 90})
	hot := kvstore.MixOp[*core.Tx](tm, m, kvstore.Mix{Keys: 2048, Theta: 0.99, ReadPct: 20, CASPct: 20, BatchPct: 10})
	phased := harness.NewPhasedOp(calm, hot)
	workers := harness.StartWorkers[*core.Tx](tm, 4, 42, phased.Op())
	time.Sleep(700 * time.Millisecond)
	phased.SetPhase(1)
	fmt.Println("--- phase shift: calm -> hot ---")
	time.Sleep(700 * time.Millisecond)
	workers.Stop()
	rt.Stop()

	for _, ev := range rt.Trace() {
		fmt.Println(ev)
	}
	best, tp := rt.Best()
	st := tm.Stats()
	fmt.Printf("best %v at %.0f txs/s; %d keys, %d commits, %d reconfigs\n",
		best, tp, s.Len(), st.Commits, st.Reconfigs)
}

func at(s *kvstore.Store[*core.Tx], key uint64) uint64 {
	v, _ := s.Get(key)
	return v
}
