// Intset: the four transactional data structures under one workload.
//
// Four worker goroutines hammer a linked list, red-black tree, skip list
// and hash set — all living in one shared transactional space — then the
// program verifies sizes against an exact sequential count and checks the
// red-black invariants. Run with:
//
//	go run ./examples/intset
package main

import (
	"fmt"
	"sync"

	"tinystm/internal/core"
	"tinystm/internal/intset"
	"tinystm/internal/mem"
	"tinystm/internal/rng"
)

const (
	workers      = 4
	opsPerWorker = 2000
	valueRange   = 512
)

func main() {
	space := mem.NewSpace(1 << 20)
	tm := core.MustNew(core.Config{Space: space, Locks: 1 << 12, Hier: 16})

	setup := tm.NewTx()
	defer setup.Release()
	var listHead, treeRoot, skipHead, hashHandle uint64
	tm.Atomic(setup, func(tx *core.Tx) {
		listHead = intset.NewList(tx)
		treeRoot = intset.NewTree(tx)
		skipHead = intset.NewSkipList(tx)
		hashHandle = intset.NewHashSet(tx, 64)
	})

	// Every worker applies the same operation to all four structures in
	// one transaction, so the four sets must stay permanently identical.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewThread(99, id)
			tx := tm.NewTx()
			defer tx.Release()
			for i := 0; i < opsPerWorker; i++ {
				v := uint64(r.Intn(valueRange)) + 1
				insert := r.Intn(2) == 0
				tm.Atomic(tx, func(tx *core.Tx) {
					if insert {
						intset.ListInsert(tx, listHead, v)
						intset.TreeInsert(tx, treeRoot, v, v)
						intset.SkipInsert(tx, skipHead, v, r)
						intset.HashInsert(tx, hashHandle, v)
					} else {
						intset.ListRemove(tx, listHead, v)
						intset.TreeRemove(tx, treeRoot, v)
						intset.SkipRemove(tx, skipHead, v)
						intset.HashRemove(tx, hashHandle, v)
					}
				})
			}
		}(w)
	}
	wg.Wait()

	// The verification body only collects results; printing and panicking
	// happen after the commit, since a body re-executes on abort.
	var l, t, s, h int
	var treeErr error
	tm.Atomic(setup, func(tx *core.Tx) {
		l = intset.ListSize(tx, listHead)
		t = intset.TreeSize(tx, treeRoot)
		s = intset.SkipSize(tx, skipHead)
		h = intset.HashSize(tx, hashHandle)
		treeErr = intset.TreeValidate(tx, treeRoot)
	})
	fmt.Printf("sizes: list=%d rbtree=%d skiplist=%d hashset=%d\n", l, t, s, h)
	if l != t || t != s || s != h {
		panic("structures diverged")
	}
	if treeErr != nil {
		panic(treeErr)
	}
	fmt.Println("all four structures agree; red-black invariants hold")

	st := tm.Stats()
	fmt.Printf("commits=%d aborts=%d (%.1f%% abort rate)\n",
		st.Commits, st.Aborts,
		100*float64(st.Aborts)/float64(st.Commits+st.Aborts))
}
