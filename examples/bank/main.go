// Bank: concurrent transfers under both memory-access designs.
//
// Workers move money between accounts while an auditor repeatedly checks
// that the total is conserved — the canonical STM correctness demo. The
// example runs the same workload under write-back and write-through and
// prints throughput and abort statistics for both, illustrating the
// trade-off discussed in Section 3.1 of the paper. Run with:
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"sync"
	"time"

	"tinystm/internal/core"
	"tinystm/internal/mem"
	"tinystm/internal/rng"
)

const (
	accounts = 256
	initial  = 1000
	workers  = 4
	runFor   = 300 * time.Millisecond
)

func main() {
	for _, design := range []core.Design{core.WriteBack, core.WriteThrough} {
		run(design)
	}
}

func run(design core.Design) {
	space := mem.NewSpace(1 << 16)
	tm := core.MustNew(core.Config{Space: space, Locks: 1 << 10, Design: design})

	setup := tm.NewTx()
	defer setup.Release()
	var base uint64
	tm.Atomic(setup, func(tx *core.Tx) {
		base = tx.Alloc(accounts)
		for i := uint64(0); i < accounts; i++ {
			tx.Store(base+i, initial)
		}
	})

	var (
		wg     sync.WaitGroup
		stop   = make(chan struct{})
		audits int
	)
	// Transfer workers.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewThread(2024, id)
			tx := tm.NewTx()
			defer tx.Release()
			for {
				select {
				case <-stop:
					return
				default:
				}
				from := uint64(r.Intn(accounts))
				to := uint64(r.Intn(accounts))
				amount := uint64(r.Intn(50))
				tm.Atomic(tx, func(tx *core.Tx) {
					balance := tx.Load(base + from)
					if balance < amount {
						return // insufficient funds; commit empty
					}
					tx.Store(base+from, balance-amount)
					tx.Store(base+to, tx.Load(base+to)+amount)
				})
			}
		}(w)
	}
	// Auditor: read-only snapshots must always see a conserved total.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tx := tm.NewTx()
		defer tx.Release()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tm.AtomicRO(tx, func(tx *core.Tx) {
				var sum uint64
				for i := uint64(0); i < accounts; i++ {
					sum += tx.Load(base + i)
				}
				if sum != accounts*initial {
					panic(fmt.Sprintf("invariant broken: %d", sum))
				}
			})
			audits++
		}
	}()

	time.Sleep(runFor)
	close(stop)
	wg.Wait()

	s := tm.Stats()
	fmt.Printf("%-3v commits=%-8d aborts=%-6d audits=%-6d throughput=%.0f txs/s\n",
		design, s.Commits, s.Aborts, audits,
		float64(s.Commits)/runFor.Seconds())
}
